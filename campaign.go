package compass

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"compass/internal/expt"
	"compass/internal/guard"
	"compass/internal/stats"
)

// SimCycles reports the run's simulated cycles to the experiment
// engine's progress line (expt.Cycled).
func (r Result) SimCycles() uint64 { return r.Cycles }

// CampaignPoint is one fault seed's outcome in a seed campaign.
type CampaignPoint struct {
	// Seed is the fault-plan seed this run used.
	Seed uint64
	// Res is the workload result under that seed.
	Res Result
}

// CampaignResult is a fault-seed campaign: the same configuration run
// under M seeds, with fault/recovery tables aggregated across seeds.
type CampaignResult struct {
	// Points holds per-seed results, ordered by the input seed slice —
	// never by completion order.
	Points []CampaignPoint
	// Aggregate is every point's counter set merged in seed-index order
	// (fault.* rows included), the campaign-wide table.
	Aggregate *stats.Counters
	// Cycles is the total simulated cycles across all seeds.
	Cycles uint64
	// Workers is the resolved worker-pool size the campaign ran with.
	Workers int
	// Wall is the host time for the whole campaign.
	Wall time.Duration
	// Failed lists the points that produced no result — contained panics
	// in a plain campaign, quarantined seeds in a guarded one. Ordered by
	// seed index, like Points.
	Failed []CampaignFailure
}

// CampaignFailure is one campaign point that produced no result.
type CampaignFailure struct {
	// Seed is the failed point's fault seed.
	Seed uint64
	// Attempts is how many times the point ran before giving up.
	Attempts int
	// Kind classifies the final failure.
	Kind guard.Kind
	// Reason is the final failure's cause.
	Reason string
	// Bundle is the final attempt's crash-repro bundle directory, if one
	// was written.
	Bundle string
}

// failureFrom classifies a campaign job error into a table row.
func failureFrom(seed uint64, err error) CampaignFailure {
	f := CampaignFailure{Seed: seed, Attempts: 1, Kind: guard.KindPanic, Reason: err.Error()}
	var q *guard.QuarantineError
	if errors.As(err, &q) {
		f.Attempts = q.Attempts
		f.Kind = q.Last.Kind
		f.Reason = q.Last.Reason
		f.Bundle = q.Last.Bundle
		return f
	}
	var a *guard.Abort
	if errors.As(err, &a) {
		f.Kind = a.Kind
		f.Reason = a.Reason
		f.Bundle = a.Bundle
		return f
	}
	var j *expt.JobError
	if errors.As(err, &j) {
		f.Reason = fmt.Sprint(j.Value)
	}
	return f
}

// FailureTable renders the quarantined-points table; empty when every
// point succeeded. Bundle paths are excluded — they are host-dependent,
// and the table is part of the determinism surface.
func (c CampaignResult) FailureTable() string {
	if len(c.Failed) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %10s  %s\n", "seed", "attempts", "kind", "reason")
	for _, f := range c.Failed {
		fmt.Fprintf(&b, "%10d %10d %10s  %s\n", f.Seed, f.Attempts, f.Kind, f.Reason)
	}
	return b.String()
}

// FaultTable renders the aggregated fault-injection and recovery
// counters across all seeds; empty if no faults fired.
func (c CampaignResult) FaultTable() string { return stats.FormatFaultTable(c.Aggregate) }

// String renders the per-seed summary table plus totals. Wall time is
// deliberately excluded — the table is part of the determinism surface.
func (c CampaignResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %14s %10s %10s %10s\n", "seed", "cycles", "user%", "os%", "faults")
	for _, p := range c.Points {
		var faults uint64
		for _, n := range p.Res.Counters.Names() {
			if strings.HasPrefix(n, "fault.") {
				faults += p.Res.Counters.Get(n)
			}
		}
		fmt.Fprintf(&b, "%10d %14d %9.1f%% %9.1f%% %10d\n",
			p.Seed, p.Res.Cycles, p.Res.Profile.UserPct, p.Res.Profile.OSPct, faults)
	}
	// Workers and Wall stay out of the table: the rendered campaign is
	// part of the serial-vs-parallel bit-equality surface.
	fmt.Fprintf(&b, "%10s %14d  (%d seeds)\n", "total", c.Cycles, len(c.Points))
	if len(c.Failed) > 0 {
		b.WriteString("quarantined:\n")
		b.WriteString(c.FailureTable())
	}
	return b.String()
}

// RunSeedCampaign runs the same workload configuration under every seed
// in parallel: point i runs `run` with cfg.Faults.Seed set to seeds[i],
// on a private machine. Results come back ordered by seed index and the
// aggregate counters are merged in that order, so a campaign's tables
// are bit-identical whether it ran on one worker or many.
//
// The run callback must be a pure function of its Config (all Run*
// workload entry points qualify): it must not read or write state shared
// with other invocations.
func RunSeedCampaign(cfg Config, seeds []uint64, run func(Config) Result, opts ExptOptions) CampaignResult {
	jobs := make([]expt.Job[Result], len(seeds))
	for i, seed := range seeds {
		scfg := cfg
		scfg.Faults.Seed = seed
		jobs[i] = expt.Job[Result]{
			Name: fmt.Sprintf("seed%d", seed),
			Run:  func() (Result, error) { return run(scfg), nil },
		}
	}
	start := time.Now()
	rs := expt.Run(expt.Config{Workers: opts.Workers, Progress: opts.Progress}, jobs)

	out := CampaignResult{
		Points:    make([]CampaignPoint, 0, len(seeds)),
		Aggregate: &stats.Counters{},
		Workers:   expt.Workers(opts.Workers, len(seeds)),
		Wall:      time.Since(start),
	}
	// Deterministic aggregation: merge in seed-index order, never
	// completion order. A point whose job panicked (expt contains it)
	// yields a failure row instead of poisoning the aggregate.
	for i, r := range rs {
		if r.Err != nil {
			out.Failed = append(out.Failed, failureFrom(seeds[i], r.Err))
			continue
		}
		out.Points = append(out.Points, CampaignPoint{Seed: seeds[i], Res: r.Value})
		out.Cycles += r.Value.Cycles
		out.Aggregate.Add(r.Value.Counters)
	}
	return out
}

// RunSeedCampaignGuarded is RunSeedCampaign under full supervision: every
// point runs in its own guard session (watchdog, panic containment,
// crash-repro bundles under gcfg.BundleDir/<label>-attempt<N>), and a
// failed point retries up to gcfg.Retries times — with host-side
// exponential backoff, resuming from its latest auto-checkpoint when the
// runner supports it — before landing in the quarantine table. Points
// that never trip produce results byte-identical to RunSeedCampaign's.
func RunSeedCampaignGuarded(cfg Config, seeds []uint64, gcfg guard.Config, run GuardedRunner, opts ExptOptions) CampaignResult {
	jobs := make([]expt.Job[Result], len(seeds))
	for i, seed := range seeds {
		scfg := cfg
		scfg.Faults.Seed = seed
		label := fmt.Sprintf("seed%d", seed)
		pgcfg := gcfg
		pgcfg.Spec.Seed = seed
		jobs[i] = expt.Job[Result]{
			Name: label,
			Run:  func() (Result, error) { return runGuardedRetries(scfg, pgcfg, label, run) },
		}
	}
	start := time.Now()
	rs := expt.Run(expt.Config{Workers: opts.Workers, Progress: opts.Progress}, jobs)

	out := CampaignResult{
		Points:    make([]CampaignPoint, 0, len(seeds)),
		Aggregate: &stats.Counters{},
		Workers:   expt.Workers(opts.Workers, len(seeds)),
		Wall:      time.Since(start),
	}
	for i, r := range rs {
		if r.Err != nil {
			out.Failed = append(out.Failed, failureFrom(seeds[i], r.Err))
			continue
		}
		out.Points = append(out.Points, CampaignPoint{Seed: seeds[i], Res: r.Value})
		out.Cycles += r.Value.Cycles
		out.Aggregate.Add(r.Value.Counters)
	}
	return out
}

// runGuardedRetries executes one campaign point's attempt loop: run under
// supervision, back off, retry, quarantine. Attempt N's bundles land in
// BundleDir/<label>-attempt<N> so no attempt overwrites another's.
func runGuardedRetries(cfg Config, gcfg guard.Config, label string, run GuardedRunner) (Result, error) {
	attempts := gcfg.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var last *guard.Abort
	for a := 0; a < attempts; a++ {
		res, err := RunGuarded(cfg, bundleSub(gcfg, fmt.Sprintf("%s-attempt%d", label, a)), label, run)
		if err == nil {
			return res, nil
		}
		var ab *guard.Abort
		if !errors.As(err, &ab) {
			// The runner's own error (bad config, unreadable checkpoint):
			// deterministic, so retrying cannot help.
			return Result{}, err
		}
		last = ab
		if a < attempts-1 {
			time.Sleep(guard.BackoffDelay(gcfg.Backoff, a))
		}
	}
	return Result{}, &guard.QuarantineError{Label: label, Attempts: attempts, Last: last}
}

// CampaignSeeds expands a base seed into m consecutive seeds — the CLI's
// -seeds M convention (base, base+1, ..., base+m-1).
func CampaignSeeds(base uint64, m int) []uint64 {
	seeds := make([]uint64, m)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}
