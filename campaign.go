package compass

import (
	"fmt"
	"strings"
	"time"

	"compass/internal/expt"
	"compass/internal/stats"
)

// SimCycles reports the run's simulated cycles to the experiment
// engine's progress line (expt.Cycled).
func (r Result) SimCycles() uint64 { return r.Cycles }

// CampaignPoint is one fault seed's outcome in a seed campaign.
type CampaignPoint struct {
	// Seed is the fault-plan seed this run used.
	Seed uint64
	// Res is the workload result under that seed.
	Res Result
}

// CampaignResult is a fault-seed campaign: the same configuration run
// under M seeds, with fault/recovery tables aggregated across seeds.
type CampaignResult struct {
	// Points holds per-seed results, ordered by the input seed slice —
	// never by completion order.
	Points []CampaignPoint
	// Aggregate is every point's counter set merged in seed-index order
	// (fault.* rows included), the campaign-wide table.
	Aggregate *stats.Counters
	// Cycles is the total simulated cycles across all seeds.
	Cycles uint64
	// Workers is the resolved worker-pool size the campaign ran with.
	Workers int
	// Wall is the host time for the whole campaign.
	Wall time.Duration
}

// FaultTable renders the aggregated fault-injection and recovery
// counters across all seeds; empty if no faults fired.
func (c CampaignResult) FaultTable() string { return stats.FormatFaultTable(c.Aggregate) }

// String renders the per-seed summary table plus totals. Wall time is
// deliberately excluded — the table is part of the determinism surface.
func (c CampaignResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %14s %10s %10s %10s\n", "seed", "cycles", "user%", "os%", "faults")
	for _, p := range c.Points {
		var faults uint64
		for _, n := range p.Res.Counters.Names() {
			if strings.HasPrefix(n, "fault.") {
				faults += p.Res.Counters.Get(n)
			}
		}
		fmt.Fprintf(&b, "%10d %14d %9.1f%% %9.1f%% %10d\n",
			p.Seed, p.Res.Cycles, p.Res.Profile.UserPct, p.Res.Profile.OSPct, faults)
	}
	// Workers and Wall stay out of the table: the rendered campaign is
	// part of the serial-vs-parallel bit-equality surface.
	fmt.Fprintf(&b, "%10s %14d  (%d seeds)\n", "total", c.Cycles, len(c.Points))
	return b.String()
}

// RunSeedCampaign runs the same workload configuration under every seed
// in parallel: point i runs `run` with cfg.Faults.Seed set to seeds[i],
// on a private machine. Results come back ordered by seed index and the
// aggregate counters are merged in that order, so a campaign's tables
// are bit-identical whether it ran on one worker or many.
//
// The run callback must be a pure function of its Config (all Run*
// workload entry points qualify): it must not read or write state shared
// with other invocations.
func RunSeedCampaign(cfg Config, seeds []uint64, run func(Config) Result, opts ExptOptions) CampaignResult {
	jobs := make([]expt.Job[Result], len(seeds))
	for i, seed := range seeds {
		scfg := cfg
		scfg.Faults.Seed = seed
		jobs[i] = expt.Job[Result]{
			Name: fmt.Sprintf("seed%d", seed),
			Run:  func() (Result, error) { return run(scfg), nil },
		}
	}
	start := time.Now()
	rs := expt.Run(expt.Config{Workers: opts.Workers, Progress: opts.Progress}, jobs)

	out := CampaignResult{
		Points:    make([]CampaignPoint, 0, len(seeds)),
		Aggregate: &stats.Counters{},
		Workers:   expt.Workers(opts.Workers, len(seeds)),
		Wall:      time.Since(start),
	}
	// Deterministic aggregation: merge in seed-index order, never
	// completion order.
	for i, r := range rs {
		out.Points = append(out.Points, CampaignPoint{Seed: seeds[i], Res: r.Value})
		out.Cycles += r.Value.Cycles
		out.Aggregate.Add(r.Value.Counters)
	}
	return out
}

// CampaignSeeds expands a base seed into m consecutive seeds — the CLI's
// -seeds M convention (base, base+1, ..., base+m-1).
func CampaignSeeds(base uint64, m int) []uint64 {
	seeds := make([]uint64, m)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}
