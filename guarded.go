package compass

import (
	"fmt"
	"path/filepath"

	"compass/internal/frontend"
	"compass/internal/guard"
	"compass/internal/machine"
	"compass/internal/osserver"
)

// GuardConfig tunes run supervision; see guard.Config for fields.
type GuardConfig = guard.Config

// RunSpec is the CLI-level run description crash-repro bundles carry; see
// guard.RunSpec.
type RunSpec = guard.RunSpec

// GuardedRunner is a workload runner that may cooperate with its
// supervision session (auto-checkpointed runs note their checkpoints so an
// abort's bundle carries the latest one). Most runners ignore the session.
type GuardedRunner func(cfg Config, sess *guard.Session) (Result, error)

// Guarded adapts a plain runner to the supervised signature.
func Guarded(run func(Config) Result) GuardedRunner {
	return func(cfg Config, _ *guard.Session) (Result, error) { return run(cfg), nil }
}

// GuardedErr adapts an error-returning runner to the supervised signature.
func GuardedErr(run func(Config) (Result, error)) GuardedRunner {
	return func(cfg Config, _ *guard.Session) (Result, error) { return run(cfg) }
}

// RunGuarded executes one run under supervision: panics (workload bugs,
// engine deadlocks, watchdog aborts) come back as a classified
// *guard.Abort instead of crashing the process, and a crash-repro bundle
// is written when gcfg.BundleDir is set. The session attaches to every
// machine the runner constructs — the Observe hook threads it through
// entry points that build machines internally — so the watchdog and the
// dispatch ring see the machine actually running.
//
// Supervision is pure host-side observation: a guarded run that never
// trips returns a Result byte-identical to the unguarded run's.
func RunGuarded(cfg Config, gcfg guard.Config, label string, run GuardedRunner) (Result, error) {
	sess := guard.NewSession(gcfg)
	prev := cfg.Observe
	cfg.Observe = func(m *machine.Machine) {
		if prev != nil {
			prev(m)
		}
		sess.Attach(m.Sim)
	}
	var res Result
	err := sess.Run(label, func() error {
		r, e := run(cfg, sess)
		res = r
		return e
	})
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// bundleSub derives a per-attempt supervision config: the shared bundle
// root gains a unique subdirectory so concurrent attempts never collide.
func bundleSub(gcfg guard.Config, sub string) guard.Config {
	if gcfg.BundleDir != "" {
		gcfg.BundleDir = filepath.Join(gcfg.BundleDir, sub)
	}
	return gcfg
}

// ChaosConfig is a deterministic failure-injection plan for supervised
// runs — the chaos-smoke harness's knobs. All-zero injects nothing.
type ChaosConfig struct {
	// CrashSeed injects a host-side panic into the run (or campaign point)
	// whose effective fault seed equals this value. 0 = off.
	CrashSeed uint64
	// CrashSegment injects a panic after that many segments of an
	// auto-checkpointed run complete (1-based; see AutoCkpt). 0 = off.
	CrashSegment int
	// Block spawns a process that blocks forever on an empty pipe: with the
	// RTC off the engine proves a deadlock; with it on, the run spins on
	// timer ticks until the watchdog's deadline trips.
	Block bool
}

// ParseChaosSpec parses a -chaos specification: comma-separated
// "crashseed=N", "crashsegment=N", "block".
func ParseChaosSpec(spec string) (ChaosConfig, error) {
	var c ChaosConfig
	if spec == "" {
		return c, nil
	}
	for _, part := range splitComma(spec) {
		switch {
		case part == "block":
			c.Block = true
		default:
			var n uint64
			if _, err := fmt.Sscanf(part, "crashseed=%d", &n); err == nil {
				c.CrashSeed = n
				continue
			}
			var k int
			if _, err := fmt.Sscanf(part, "crashsegment=%d", &k); err == nil {
				c.CrashSegment = k
				continue
			}
			return c, fmt.Errorf("compass: bad -chaos element %q", part)
		}
	}
	return c, nil
}

func splitComma(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		if i > 0 {
			out = append(out, s[:i])
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

// ChaosPanicFor returns the guard.Config injection hook for a chaos plan:
// it panics when the supervised attempt's label matches the crash seed.
// Campaign points are labeled "seed<N>"; single runs use the workload name,
// so CrashSeed also matches when the base config's fault seed equals it.
func (c ChaosConfig) ChaosPanicFor(baseSeed uint64) func(string) {
	if c.CrashSeed == 0 {
		return nil
	}
	target := fmt.Sprintf("seed%d", c.CrashSeed)
	return func(label string) {
		if label == target || (baseSeed == c.CrashSeed && label != "") {
			panic(fmt.Sprintf("chaos: injected panic for %s", target))
		}
	}
}

// ObserveBlock returns a machine.Config.Observe hook that spawns the
// chaos blocking process (ChaosConfig.Block).
func ObserveBlock() func(*machine.Machine) {
	return func(m *machine.Machine) {
		m.SpawnConnected("chaos-block", func(p *frontend.Proc) {
			t := osserver.For(p)
			r, _ := t.Pipe(16)
			// Nobody ever writes: the read blocks for the rest of the run.
			t.PipeRead(r, 1)
		})
	}
}
