// Pipeline: classic UNIX producer | filter | consumer across three forked
// processes connected by kernel pipes — the §1 "sophisticated
// inter-process communication" that scientific benchmark suites never
// exercise, shown here with blocking pipe backpressure on a 2-CPU machine.
package main

import (
	"fmt"

	"compass/internal/frontend"
	"compass/internal/isa"
	"compass/internal/machine"
	"compass/internal/osserver"
	"compass/internal/stats"
)

func main() {
	cfg := machine.Default()
	cfg.CPUs = 2 // three processes on two CPUs: scheduler juggles them
	m := machine.New(cfg)

	const records = 400
	var kept int
	m.SpawnConnected("producer", func(p *frontend.Proc) {
		os := osserver.For(p)
		// Note: unlike real UNIX fds, pipe ends are not reference counted
		// here — closing an end closes it pipe-wide, and adopted
		// descriptors are views of the same end. Each end is therefore
		// closed exactly once, by the process that finishes with it.
		r1, w1 := os.Pipe(512)
		pipe1, _ := os.PipeHandle(r1)
		r2, _ := os.Pipe(512)
		pipe2, _ := os.PipeHandle(r2)

		os.Fork("filter", func(cp *frontend.Proc) {
			cos := osserver.For(cp)
			in := cos.AdoptPipe(pipe1, true)
			out := cos.AdoptPipe(pipe2, false)
			for {
				seg, _ := cos.PipeRead(in, 64)
				if seg == nil {
					break
				}
				// Keep even bytes only (the "grep").
				keep := seg[:0:0]
				for _, b := range seg {
					cp.Compute(isa.ALU(12))
					if b%2 == 0 {
						keep = append(keep, b)
					}
				}
				if len(keep) > 0 {
					cos.PipeWrite(out, keep)
				}
			}
			cos.Close(in)
			cos.Close(out)
		})
		os.Fork("consumer", func(cp *frontend.Proc) {
			cos := osserver.For(cp)
			in := cos.AdoptPipe(pipe2, true)
			for {
				seg, _ := cos.PipeRead(in, 64)
				if seg == nil {
					break
				}
				cp.Compute(isa.ALU(uint64(20 * len(seg))))
				kept += len(seg)
			}
			cos.Close(in)
		})

		buf := make([]byte, records)
		for i := range buf {
			buf[i] = byte(i)
		}
		os.PipeWrite(w1, buf)
		os.Close(w1) // EOF ripples: filter drains, closes out; consumer EOFs
	})

	end := m.Sim.Run()
	total := m.Sim.TotalAccount()
	fmt.Println("producer | filter | consumer over kernel pipes")
	fmt.Printf("  records in %d, records out %d (even bytes only)\n", records, kept)
	fmt.Printf("  completed in %d cycles\n", end)
	fmt.Printf("  %s\n", stats.ProfileOf("pipeline", &total))
	fmt.Print("\n", m.OS.FormatSyscallProfile(6))
}
