// NUMA page placement: the §3.3.1 experiment — the same SOR kernel on a
// 4-node CC-NUMA target under round-robin, block and first-touch
// placement, comparing local/remote miss ratios and completion time.
package main

import (
	"fmt"

	"compass"
)

func run(placement int, label string) {
	cfg := compass.DefaultConfig()
	cfg.Arch = compass.ArchCCNUMA
	cfg.Nodes = 4
	switch placement {
	case 0:
		cfg.Placement = compass.PlaceRoundRobin
	case 1:
		cfg.Placement = compass.PlaceBlock
	case 2:
		cfg.Placement = compass.PlaceFirstTouch
	}
	res := compass.RunSOR(cfg, compass.SORConfig{N: 96, Iters: 6, Procs: 4})
	local := res.Counters.Get("ccnuma.miss.local")
	remote := res.Counters.Get("ccnuma.miss.remote")
	frac := 0.0
	if local+remote > 0 {
		frac = 100 * float64(local) / float64(local+remote)
	}
	fmt.Printf("%-12s %12d cycles   L2-miss locality %5.1f%% (%d local / %d remote)\n",
		label, res.Cycles, frac, local, remote)
}

func main() {
	fmt.Println("SOR on 4-node CC-NUMA under the three page-placement policies:")
	run(0, "round-robin")
	run(1, "block")
	run(2, "first-touch")
	fmt.Println("\nfirst-touch should maximize local misses: each worker touches its rows first")
}
