// Decision support: the TPC-D-like scan/aggregate queries, including the
// mmap-based scan that exercises the paper's mmap/munmap/msync profile,
// with the buffer-cache and page-in counters that explain the OS share.
package main

import (
	"fmt"

	"compass"
)

func main() {
	cfg := compass.DefaultConfig()
	w := compass.DefaultTPCD()
	w.Rows = 16384
	w.Agents = 4

	scan := compass.RunTPCD(cfg, w)
	fmt.Println("Q1+Q6 partitioned scans through the shared buffer pool:")
	fmt.Println(scan)

	w.Agents = 1
	mm := compass.RunTPCDQueries(cfg, w, compass.QueryMmap, true)
	fmt.Println("\nmmap-based scan (page faults page blocks in through the buffer cache):")
	fmt.Println(mm)
	fmt.Printf("  page-ins: %d, mmaps: %d, munmaps: %d\n",
		mm.Counters.Get("vm.pagein"), mm.Counters.Get("vm.mmap"), mm.Counters.Get("vm.munmap"))

	jn := compass.RunTPCDQueries(cfg, w, compass.QueryJoin, true)
	fmt.Println("\norder ⋈ lineitem nested-loop join:")
	fmt.Println(jn)
}
