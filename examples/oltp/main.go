// OLTP: TPC-C-like transactions against the shared-buffer-pool database
// engine on two target architectures (bus SMP vs CC-NUMA), showing how an
// architecture study reads COMPASS output.
package main

import (
	"fmt"

	"compass"
)

func run(arch compass.Arch, nodes int, label string) {
	cfg := compass.DefaultConfig()
	cfg.Arch = arch
	cfg.Nodes = nodes
	w := compass.DefaultTPCC()
	w.Agents = 4
	w.TxPerAgent = 20
	res := compass.RunTPCC(cfg, w)
	fmt.Printf("%-10s %s\n", label, res)
	fmt.Printf("           pool hits %.0f, misses %.0f\n",
		res.Extra["pool.hits"], res.Extra["pool.misses"])
}

func main() {
	fmt.Println("TPCC/db on two shared-memory targets")
	run(compass.ArchSMP, 1, "smp")
	run(compass.ArchCCNUMA, 4, "ccnuma")
}
