// Three-tier: a dynamic-content web stack under simulation — trace-driven
// clients → pre-forked web workers → loopback connections → database tier
// with a shared buffer pool. This composes every category-1 OS service the
// paper models (TCP/IP, connect/send/recv, file I/O, shm) in one workload.
package main

import (
	"fmt"

	"compass"
)

func main() {
	cfg := compass.DefaultConfig()
	res := compass.RunTier3(cfg, compass.DefaultTier3(), 120)

	fmt.Println("Dynamic-content stack: clients → httpd workers → db tier")
	fmt.Println(res)
	fmt.Printf("  requests completed : %.0f (all bodies validated against the oracle)\n", res.Extra["requests"])
	fmt.Printf("  db point queries   : %.0f OK\n", res.Extra["ok"])
	fmt.Printf("  mean latency       : %.0f cycles\n", res.Extra["latency.mean"])
}
