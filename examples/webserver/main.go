// Webserver: the paper's §4.2 experiment end to end — generate a
// SPECWeb96-like fileset on the simulated disk, record a request trace,
// and replay it against the pre-forked web server through the simulated
// Ethernet, then print the Table-1-style profile showing the server lives
// in the OS.
package main

import (
	"fmt"
	"os"

	"compass"
)

func main() {
	web := compass.DefaultSPECWeb()
	web.Dirs = 2
	web.Requests = 150

	cfg := compass.DefaultConfig()
	res := compass.RunSPECWeb(cfg, web, 4 /* workers */, 8 /* concurrent clients */)

	fmt.Println("SPECWeb-like trace replayed against the simulated Apache-like server")
	fmt.Println(res)
	fmt.Printf("  requests completed : %.0f\n", res.Extra["requests"])
	fmt.Printf("  bytes served       : %.0f\n", res.Extra["bytes"])
	fmt.Printf("  mean latency       : %.0f cycles\n", res.Extra["latency.mean"])
	fmt.Println()
	fmt.Println("Paper's Table 1 row: user 14.9% / OS 85.1% (interrupt 37.8%, kernel 47.3%)")
	if res.Profile.OSPct < 50 {
		fmt.Println("unexpected: server not OS-dominated")
		os.Exit(1)
	}
}
