// Quickstart: build a 4-CPU simulated machine, run a small parallel
// program (the SOR grid solver) on it, and print the time profile and the
// memory-system statistics — the minimal COMPASS session.
package main

import (
	"fmt"

	"compass"
)

func main() {
	cfg := compass.DefaultConfig() // 4 CPUs, simple backend (1-level caches)
	res := compass.RunSOR(cfg, compass.SORConfig{N: 64, Iters: 8, Procs: 4})

	fmt.Println("COMPASS quickstart — SOR on a 4-way simple-backend machine")
	fmt.Println(res)
	fmt.Println()
	fmt.Println("Backend counters:")
	fmt.Print(res.Counters.String())
}
