// Loadgen: a million simulated clients against the web server through
// the open-loop traffic generator — no per-client goroutines or
// connection objects, just per-class aggregate arrival state. A
// flash-crowd window multiplies the arrival rate mid-run; the printed
// table reports per-class offered/completed counts and the
// p50/p90/p99/p999 response-time quantiles next to the Table-1 profile.
package main

import (
	"fmt"
	"os"

	"compass"
)

func main() {
	lc, err := compass.ParseLoadSpec(
		"seed=42,requests=400;" +
			"class=web,clients=1000000,interval=1e9,burst=2,objects=16;" +
			"class=api,rate=40,objects=8,flash=2e6:4e6:8")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := compass.DefaultConfig()
	res, err := compass.RunLoadHTTPD(cfg, lc, 4 /* server workers */)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("one million open-loop clients against the simulated web server")
	fmt.Println(res)
	fmt.Printf("  offered            : %.0f\n", res.Extra["offered"])
	fmt.Printf("  completed          : %.0f\n", res.Extra["completed"])
	fmt.Printf("  failed             : %.0f\n", res.Extra["failed"])
	fmt.Println()
	fmt.Print(res.LoadTable)
	if res.Extra["completed"]+res.Extra["failed"] != res.Extra["offered"] {
		fmt.Println("unexpected: offered requests unaccounted for")
		os.Exit(1)
	}
}
