// Scheduler study: the §3.3.2 experiment — more database processes than
// processors under the FCFS, affinity and preemptive process schedulers,
// comparing migrations, context switches and completion time.
package main

import (
	"fmt"

	"compass"
)

func run(sched int, preempt bool, label string) {
	cfg := compass.DefaultConfig()
	cfg.CPUs = 2
	if sched == 1 {
		cfg.Scheduler = compass.SchedAffinity
	}
	cfg.Preemptive = preempt
	w := compass.DefaultTPCC()
	w.Agents = 6 // oversubscribed: 6 processes on 2 CPUs
	w.TxPerAgent = 10
	res := compass.RunTPCC(cfg, w)
	fmt.Printf("%-22s %12d cycles  ctx %6d  migrations %5d  preemptions %4d\n",
		label, res.Cycles,
		res.Counters.Get("sched.ctxswitches"),
		res.Counters.Get("sched.migrations"),
		res.Counters.Get("sched.preemptions"))
}

func main() {
	fmt.Println("TPCC with 6 agents on 2 CPUs under the three process schedulers:")
	run(0, false, "fcfs")
	run(1, false, "affinity")
	run(0, true, "fcfs+preemptive")
	fmt.Println("\naffinity should cut migrations; preemption trades switches for fairness")
}
