package compass

import (
	"fmt"
	"time"

	"compass/internal/dsm"
	"compass/internal/frontend"
	"compass/internal/isa"
	"compass/internal/machine"
	"compass/internal/mem"
	"compass/internal/osserver"
	"compass/internal/simsync"
)

// RunSORDSM runs the SOR kernel on a software-DSM cluster (the paper's
// third target class, §5): each worker is a cluster node; the grid lives
// in a DSM region whose pages migrate and replicate through IVY-style
// page faults, while per-access traffic stays node-local. Compare with
// RunSOR on ArchCCNUMA for the hardware-vs-software coherence trade.
func RunSORDSM(cfg Config, w SORConfig) Result {
	cfg.CPUs = w.Procs // one node per worker
	m := machine.New(cfg)
	proto := dsm.New(dsm.DefaultConfig(w.Procs))

	n := w.N
	gridBytes := uint32(n*n*8 + mem.PageSize) // + page for the barrier
	gridBytes = (gridBytes + mem.PageMask) &^ uint32(mem.PageMask)

	for i := 0; i < w.Procs; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("node%d", i), func(p *frontend.Proc) {
			os := osserver.For(p)
			segID, err := os.ShmGet(0xD50A, gridBytes)
			if err != nil {
				panic(err)
			}
			base, err := os.ShmAt(segID)
			if err != nil {
				panic(err)
			}
			region := dsm.NewRegion(m.Sim, proto, base+mem.PageSize, gridBytes-mem.PageSize)
			view := region.NewView(i)
			bar := &simsync.Barrier{Addr: base, N: uint64(w.Procs)}

			cell := func(r, c int) mem.VirtAddr {
				return region.Base + mem.VirtAddr((r*n+c)*8)
			}
			lo := 1 + (n-2)*i/w.Procs
			hi := 1 + (n-2)*(i+1)/w.Procs
			for it := 0; it < w.Iters; it++ {
				for r := lo; r < hi; r++ {
					// Row-granular rights checks (pages hold whole rows
					// when n*8 <= PageSize), then the stencil traffic.
					view.LoadRange(p, cell(r-1, 1), (n-2)*8)
					view.LoadRange(p, cell(r+1, 1), (n-2)*8)
					view.StoreRange(p, cell(r, 1), (n-2)*8)
					p.Compute(isa.InstrMix{FPAdd: uint64(3 * (n - 2)), FPMul: uint64(n - 2), Int: uint64(8 * (n - 2)), Branch: uint64(n - 2)})
				}
				bar.Wait(p)
			}
		})
	}
	start := time.Now()
	end := m.Sim.Run()
	res := finish("SOR/dsm", m, uint64(end), time.Since(start))
	var c = res.Counters
	proto.AddCounters(c)
	res.Extra["dsm.pagemoves"] = float64(proto.PageMoves)
	res.Extra["dsm.faults"] = float64(proto.ReadFaults + proto.WriteFaults)
	return res
}
