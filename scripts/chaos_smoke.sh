#!/bin/sh
# Chaos smoke: drive the supervised-run machinery end to end through the
# CLI. A guarded campaign with an injected panic must aggregate the
# surviving seeds, quarantine the crashing one after its retry budget,
# and write a crash-repro bundle that replays to the identical failure;
# an induced hang must classify as a proven deadlock. Everything runs in
# seconds — this is containment coverage, not a benchmark.
set -eu

bin=${COMPASSRUN:-go run ./cmd/compassrun}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== guarded campaign with injected panic (seed 13 of 11..14) =="
if $bin -workload tpcc -agents 2 -tx 3 \
    -faults "seed=11,disk.transient=0.2,net.drop=0.02" \
    -seeds 4 -chaos crashseed=13 -retries 1 -bundle "$work/bundles" \
    >"$work/camp.out" 2>"$work/camp.err"; then
  echo "chaos-smoke: campaign with a crashing seed exited 0" >&2
  exit 1
fi
cat "$work/camp.out" "$work/camp.err"
# Partial results: the three clean seeds still aggregate...
grep -q "(3 seeds)" "$work/camp.out"
# ...and the crashed one lands in the quarantine table after 2 attempts.
grep -q "quarantined:" "$work/camp.out"
grep -q "kind=quarantine point=seed13 attempts=2" "$work/camp.err"

echo "== crash-repro bundle replay =="
bundle=$(sed -n 's/.* bundle=//p' "$work/camp.err" | head -1)
test -n "$bundle"
test -f "$bundle/manifest.json"
test -f "$bundle/stack.txt"
$bin -repro "$bundle"

echo "== induced deadlock (blocked pipe read, RTC off) =="
if $bin -workload tpcc -agents 1 -tx 1 -chaos block -rtc=false \
    >"$work/dl.out" 2>"$work/dl.err"; then
  echo "chaos-smoke: induced deadlock exited 0" >&2
  exit 1
fi
cat "$work/dl.err"
grep -q "kind=deadlock" "$work/dl.err"

echo "chaos-smoke: OK"
