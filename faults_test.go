package compass

import (
	"path/filepath"
	"testing"
)

// faultPlan is a deliberately hostile but survivable plan: every rate is
// far above anything realistic so short test runs hit every site, and the
// retry budgets make the give-up probability negligible.
func faultPlan() FaultConfig {
	var f FaultConfig
	f.Seed = 7
	f.Disk.TransientRate = 0.3
	f.Disk.SlowRate = 0.1
	f.Disk.BadBlockRate = 0.01
	f.Disk.MaxRetries = 12
	f.Net.DropRate = 0.05
	f.Net.CorruptRate = 0.02
	f.Net.DupRate = 0.02
	f.Mem.ECCRate = 1e-4
	return f
}

// A zero fault plan leaves no trace: no counters, no table.
func TestFaultFreeHasNoFaultCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUs = 2
	w := DefaultTPCC()
	w.Agents = 2
	w.TxPerAgent = 2
	res := RunTPCC(cfg, w)
	if ft := res.FaultTable(); ft != "" {
		t.Errorf("fault-free run produced a fault table:\n%s", ft)
	}
}

// TPCC under disk and memory faults commits exactly the same transactions
// as the fault-free run — recovery is invisible to the application — but
// pays for it in simulated cycles.
func TestFaultsTPCCCorrectButSlower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUs = 2
	w := DefaultTPCC()
	w.Agents = 2
	w.TxPerAgent = 6

	base := RunTPCC(cfg, w)
	fcfg := cfg
	fcfg.Faults = faultPlan()
	faulted := RunTPCC(fcfg, w)

	if got, want := faulted.Extra["transactions"], base.Extra["transactions"]; got != want {
		t.Errorf("transactions: faulted %v, fault-free %v", got, want)
	}
	if faulted.Cycles <= base.Cycles {
		t.Errorf("faulted run took %d cycles, fault-free %d — recovery must cost time",
			faulted.Cycles, base.Cycles)
	}
	if faulted.Counters.Get("fault.disk.transient") == 0 {
		t.Error("no transient disk faults injected")
	}
	if faulted.Counters.Get("fault.disk.retries") == 0 {
		t.Error("no disk retries recorded")
	}
	if faulted.Counters.Get("fault.mem.ecc") == 0 {
		t.Error("no ECC events recorded")
	}
	if n := faulted.Counters.Get("fault.disk.unrecoverable"); n != 0 {
		t.Errorf("%d unrecoverable disk errors — plan was supposed to be survivable", n)
	}
}

// SPECWeb under wire faults serves every request with the right bytes —
// the ARQ hides drops, corruption and duplicates — merely slower.
func TestFaultsSPECWebCorrectButSlower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUs = 2
	w := DefaultSPECWeb()
	w.Requests = 20

	base := RunSPECWeb(cfg, w, 2, 4)
	fcfg := cfg
	fcfg.Faults = faultPlan()
	faulted := RunSPECWeb(fcfg, w, 2, 4)

	for _, key := range []string{"requests", "served", "bytes"} {
		if got, want := faulted.Extra[key], base.Extra[key]; got != want {
			t.Errorf("%s: faulted %v, fault-free %v", key, got, want)
		}
	}
	if faulted.Cycles <= base.Cycles {
		t.Errorf("faulted run took %d cycles, fault-free %d — recovery must cost time",
			faulted.Cycles, base.Cycles)
	}
	if faulted.Counters.Get("fault.net.drops") == 0 {
		t.Error("no wire drops injected")
	}
	if faulted.Counters.Get("fault.net.retransmits") == 0 {
		t.Error("no retransmits recorded")
	}
	if n := faulted.Extra["client.failures"]; n != 0 {
		t.Errorf("%v client give-ups — plan was supposed to be survivable", n)
	}
	if n := faulted.Counters.Get("fault.net.failures"); n != 0 {
		t.Errorf("%d host ARQ give-ups — plan was supposed to be survivable", n)
	}
}

// The fault plan is seeded, not sampled: two runs with the same seed are
// bit-identical in every statistic.
func TestFaultsDeterministicReplay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUs = 2
	cfg.Faults = faultPlan()
	w := DefaultSPECWeb()
	w.Requests = 20

	a := RunSPECWeb(cfg, w, 2, 4)
	b := RunSPECWeb(cfg, w, 2, 4)
	sameResult(t, a, b)
}

// Fault state is checkpoint state: resuming a faulted TPCC warm snapshot
// replays exactly the fault sequence of the uninterrupted run.
func TestFaultsCheckpointDeterministicTPCC(t *testing.T) {
	warm, measured := tpccPhases()
	cfg := DefaultConfig()
	cfg.CPUs = 2
	cfg.Faults = faultPlan()
	path := filepath.Join(t.TempDir(), "tpcc-faults.ckpt")

	ref, err := RunTPCCWithOptions(cfg, warm, measured, RunOptions{WarmupCheckpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTPCCWithOptions(cfg, warm, measured, RunOptions{ResumeFrom: path})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, ref, got)
	if ref.Counters.Get("fault.disk.transient") == 0 {
		t.Error("no transient disk faults injected across the checkpoint")
	}
}

// Same property for the web workload: ARQ counters, injector draw
// positions and the flap window all survive the snapshot.
func TestFaultsCheckpointDeterministicSPECWeb(t *testing.T) {
	warm := DefaultSPECWeb()
	warm.Requests = 20
	measured := warm
	measured.Requests = 30
	measured.Seed = warm.Seed + 1
	cfg := DefaultConfig()
	cfg.CPUs = 2
	cfg.Faults = faultPlan()
	path := filepath.Join(t.TempDir(), "web-faults.ckpt")

	ref, err := RunSPECWebWithOptions(cfg, warm, measured, 2, 4, RunOptions{WarmupCheckpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSPECWebWithOptions(cfg, warm, measured, 2, 4, RunOptions{ResumeFrom: path})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, ref, got)
	if ref.Counters.Get("fault.net.retransmits") == 0 {
		t.Error("no retransmits recorded across the checkpoint")
	}
	if ref.Extra["requests"] != float64(measured.Requests) {
		t.Errorf("requests = %v", ref.Extra["requests"])
	}
}
