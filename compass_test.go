package compass

import (
	"fmt"
	"strings"
	"testing"

	"compass/internal/apps/db"
	"compass/internal/apps/tpcd"
	"compass/internal/frontend"
	"compass/internal/machine"
)

func smallTPCD() TPCDConfig {
	w := DefaultTPCD()
	w.Rows = 2048
	w.Orders = 32
	w.Agents = 2
	return w
}

func TestRunTPCDFacade(t *testing.T) {
	res := RunTPCD(DefaultConfig(), smallTPCD())
	if res.Cycles == 0 {
		t.Fatal("no simulated time elapsed")
	}
	if res.Profile.TotalCycles == 0 {
		t.Fatal("empty profile")
	}
	if res.Counters.Get("simple.loads") == 0 && res.Counters.Get("simple.stores") == 0 {
		t.Error("no memory traffic recorded")
	}
	if !strings.Contains(res.String(), "TPCD") {
		t.Error("summary missing name")
	}
}

func TestRawModeIsFasterAndSkipsModel(t *testing.T) {
	w := smallTPCD()
	w.Agents = 1
	cfg := DefaultConfig()
	cfg.CPUs = 1
	sim := RunTPCDQueries(cfg, w, QueryScanAgg, true)
	raw := RunTPCDQueries(cfg, w, QueryScanAgg, false)
	// The raw run must drive far fewer events into the memory model.
	simTraffic := sim.Counters.Get("simple.loads") + sim.Counters.Get("simple.stores")
	rawTraffic := raw.Counters.Get("simple.loads") + raw.Counters.Get("simple.stores")
	if rawTraffic >= simTraffic/10 {
		t.Errorf("raw traffic %d not ≪ simulated traffic %d", rawTraffic, simTraffic)
	}
}

func TestRunTPCCFacade(t *testing.T) {
	w := DefaultTPCC()
	w.Agents = 2
	w.TxPerAgent = 6
	res := RunTPCC(DefaultConfig(), w)
	if res.Extra["transactions"] != 12 {
		t.Errorf("transactions = %f", res.Extra["transactions"])
	}
	if res.Extra["pool.misses"] == 0 {
		t.Error("no pool misses recorded")
	}
}

func TestRunSPECWebFacade(t *testing.T) {
	w := DefaultSPECWeb()
	w.Requests = 25
	res := RunSPECWeb(DefaultConfig(), w, 2, 4)
	if res.Extra["requests"] != 25 || res.Extra["served"] != 25 {
		t.Errorf("requests=%f served=%f", res.Extra["requests"], res.Extra["served"])
	}
	if res.Profile.OSPct < 50 {
		t.Errorf("web OS share %.1f%% too low", res.Profile.OSPct)
	}
}

func TestRunSORFacade(t *testing.T) {
	res := RunSOR(DefaultConfig(), SORConfig{N: 26, Iters: 4, Procs: 4})
	if res.Profile.OSPct > 15 {
		t.Errorf("SOR OS share %.1f%%", res.Profile.OSPct)
	}
}

func TestTable1SmallScale(t *testing.T) {
	rows := Table1(Table1Scale{CPUs: 2, TPCCTx: 6, TPCDRows: 2048, WebRequests: 20})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Shape assertions (scaled-down, so bounds are loose): the web server
	// is OS-dominated; the database workloads are user-dominated.
	if rows[0].Profile.OSPct < 50 {
		t.Errorf("SPECWeb OS %.1f%%, want > 50%%", rows[0].Profile.OSPct)
	}
	if rows[1].Profile.UserPct < 50 {
		t.Errorf("TPCD user %.1f%%, want > 50%%", rows[1].Profile.UserPct)
	}
	if rows[2].Profile.UserPct < 50 {
		t.Errorf("TPCC user %.1f%%, want > 50%%", rows[2].Profile.UserPct)
	}
	txt := FormatTable1(rows)
	if !strings.Contains(txt, "benchmark") || !strings.Contains(txt, "interrupt") {
		t.Error("table header missing")
	}
	t.Logf("\n%s", txt)
}

func TestSlowdownSmall(t *testing.T) {
	res := Slowdown(1, 1, 1, 2048)
	if len(res.Rows) != 3 {
		t.Fatal("want 3 rows")
	}
	if res.Rows[1].Slowdown <= res.Rows[0].Slowdown {
		t.Errorf("simple backend slowdown %.1f not above raw", res.Rows[1].Slowdown)
	}
	if res.Rows[2].Slowdown <= 1 {
		t.Errorf("complex backend slowdown %.2f not above raw", res.Rows[2].Slowdown)
	}
	if !strings.Contains(res.Format(), "backend") {
		t.Error("format broken")
	}
}

func TestRunSORDSMFacade(t *testing.T) {
	res := RunSORDSM(DefaultConfig(), SORConfig{N: 32, Iters: 2, Procs: 4})
	if res.Extra["dsm.faults"] == 0 || res.Extra["dsm.pagemoves"] == 0 {
		t.Errorf("DSM protocol idle: %+v", res.Extra)
	}
	if res.Cycles == 0 {
		t.Error("no simulated time")
	}
}

func TestRunBatchSweepGranularityInvariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUs = 2
	a := RunBatchSweep(cfg, 1, 3000)
	b := RunBatchSweep(cfg, 8, 3000)
	if a != b {
		t.Errorf("batching changed simulated time: %d vs %d", a, b)
	}
}

func TestRunTier3Facade(t *testing.T) {
	res := RunTier3(DefaultConfig(), DefaultTier3(), 30)
	if res.Extra["requests"] != 30 || res.Extra["ok"] != 30 {
		t.Errorf("requests=%.0f ok=%.0f", res.Extra["requests"], res.Extra["ok"])
	}
	if res.Syscalls == "" {
		t.Error("no syscall profile")
	}
}

func TestSyscallProfileInResult(t *testing.T) {
	w := smallTPCD()
	res := RunTPCD(DefaultConfig(), w)
	if !strings.Contains(res.Syscalls, "kreadv") {
		t.Errorf("syscall profile missing kreadv:\n%s", res.Syscalls)
	}
}

// TestArchitecturesFunctionallyEquivalent runs the same query on every
// target architecture: timing differs, but the execution-driven results
// must be identical to the oracle (the memory models are timing-only by
// design, so they must never perturb data).
func TestArchitecturesFunctionallyEquivalent(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arch  Arch
		nodes int
	}{
		{"fixed", ArchFixed, 1},
		{"simple", ArchSimple, 1},
		{"smp", ArchSMP, 1},
		{"ccnuma", ArchCCNUMA, 4},
		{"coma", ArchCOMA, 4},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Arch = tc.arch
			cfg.Nodes = tc.nodes
			m := machine.New(cfg)
			w := tpcd.Setup(m.FS, tpcd.Config{Rows: 2048, Orders: 32, Agents: 4, PoolPages: 16, Seed: 7})
			pages := w.LineitemPages()
			partials := make([]tpcd.Q1Result, 4)
			for i := 0; i < 4; i++ {
				i := i
				m.SpawnConnected(fmt.Sprintf("a%d", i), func(p *frontend.Proc) {
					a := db.NewAgent(p, w.Cat)
					partials[i] = w.Q1(p, a, pages*i/4, pages*(i+1)/4, 1200)
					a.Close()
				})
			}
			m.Sim.Run()
			var got tpcd.Q1Result
			for _, pr := range partials {
				got.Count += pr.Count
				got.SumQty += pr.SumQty
				got.SumPrice += pr.SumPrice
			}
			if got != w.HostQ1(1200) {
				t.Errorf("%s: Q1 = %+v, oracle %+v", tc.name, got, w.HostQ1(1200))
			}
		})
	}
}
