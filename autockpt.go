package compass

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"compass/internal/apps/db"
	"compass/internal/apps/tpcc"
	"compass/internal/checkpoint"
	"compass/internal/guard"
	"compass/internal/machine"
)

// AutoCkpt configures periodic auto-checkpointing for supervised runs.
//
// Goroutine stacks cannot be serialized, so a run can only checkpoint at a
// quiescent boundary (no live workload processes). RunTPCCAuto manufactures
// such boundaries deterministically: it splits the transaction budget into
// Segments equal slices, runs each slice to completion on the same machine,
// and writes a checkpoint between slices whenever at least Interval
// simulated cycles have passed since the last one. The segment schedule is
// a pure function of the configuration — an uninterrupted segmented run and
// one resumed from any of its own checkpoints execute identical work and
// produce byte-identical results.
type AutoCkpt struct {
	// Interval is the minimum number of simulated cycles between
	// checkpoints. 0 disables checkpoint writing (the run still executes
	// segmented when Segments > 1).
	Interval uint64
	// Dir receives auto-NNN.ckpt files and is scanned on start for a
	// matching checkpoint to resume from. Empty disables both.
	Dir string
	// Segments is the number of quiescent slices (default 1 — a plain run
	// with no checkpoint opportunities).
	Segments int
	// Note, when non-nil, observes each written checkpoint path (the guard
	// session uses it so crash bundles carry the latest checkpoint).
	Note func(path string)
	// ChaosCrashSegment, when > 0, panics after that many segments complete
	// (1-based, after the boundary checkpoint is written) — the chaos-smoke
	// harness's crash point for exercising resume-on-failure.
	ChaosCrashSegment int
}

func (a AutoCkpt) segments() int {
	if a.Segments <= 0 {
		return 1
	}
	return a.Segments
}

// autoSection names the auto-checkpoint metadata section.
const autoSection = "autockpt"

// autoMeta is the auto-checkpoint section: which segment a resumed run
// continues from, and the boundary cycle (for interval accounting).
type autoMeta struct {
	NextSegment int
	Cycle       uint64
}

// latestAutoCkpt scans dir for the newest auto-NNN.ckpt whose config hash
// matches cfg. Unreadable or mismatched files are skipped, not fatal — a
// stale directory must never poison a fresh run.
func latestAutoCkpt(dir string, cfg Config) (string, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && len(n) > 9 && n[:5] == "auto-" && filepath.Ext(n) == ".ckpt" {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	want := checkpoint.ConfigHash(cfg)
	for _, n := range names {
		path := filepath.Join(dir, n)
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		info, err := checkpoint.ReadInfo(f)
		f.Close()
		if err == nil && info.ConfigHash == want {
			return path, true
		}
	}
	return "", false
}

// RunTPCCAuto runs the OLTP workload in AutoCkpt mode: segmented execution
// with periodic checkpoints at quiescent boundaries, and automatic resume
// from the latest matching checkpoint in ac.Dir. With Segments <= 1 and no
// prior checkpoint it performs exactly RunTPCC's work.
//
// Resume is how failed supervised runs retry cheaply: the campaign retry
// loop just calls the runner again, and the runner finds its own latest
// checkpoint and skips the completed segments.
func RunTPCCAuto(cfg Config, w TPCCConfig, ac AutoCkpt) (Result, error) {
	segs := ac.segments()
	start := time.Now()

	var (
		cur      *tpcc.Workload // workload bound to the machine's current state
		base     int            // next agent index (naming + RNG stream continuity)
		firstSeg int
		lastCkpt uint64
		ckptSeq  int
	)
	var m *machine.Machine
	if ac.Dir != "" {
		if path, ok := latestAutoCkpt(ac.Dir, cfg); ok {
			mm, sections, err := restoreCheckpointFile(path, cfg.Shards)
			if err != nil {
				return Result{}, err
			}
			state, ok := sections[tpccSection]
			if !ok {
				return Result{}, fmt.Errorf("compass: auto checkpoint has no %q section", tpccSection)
			}
			var meta autoMeta
			if err := gob.NewDecoder(bytes.NewReader(sections[autoSection])).Decode(&meta); err != nil {
				return Result{}, fmt.Errorf("compass: auto checkpoint metadata: %w", err)
			}
			restored, b, err := tpcc.AttachRestore(state)
			if err != nil {
				return Result{}, err
			}
			// Restored machines do not re-run the Observe hook (the snapshot
			// cannot carry it); re-invoke it so supervision re-attaches.
			if cfg.Observe != nil {
				cfg.Observe(mm)
			}
			cur, base = restored, b
			firstSeg, lastCkpt = meta.NextSegment, meta.Cycle
			ckptSeq = meta.NextSegment
			m = mm
		}
	}
	if m == nil {
		m = machine.New(cfg)
		cur = tpcc.Setup(m.FS, w)
	}

	end := lastCkpt
	for k := firstSeg; k < segs; k++ {
		lo, hi := w.TxPerAgent*k/segs, w.TxPerAgent*(k+1)/segs
		if hi > lo {
			segCfg := w
			segCfg.TxPerAgent = hi - lo
			segWL, err := cur.WithConfig(segCfg)
			if err != nil {
				return Result{}, err
			}
			spawnTPCCAgents(m, segWL, base, w.Agents)
			base += w.Agents
			end = uint64(m.Sim.Run())
			cur = segWL
		}
		if k < segs-1 && ac.Dir != "" && ac.Interval > 0 && end-lastCkpt >= ac.Interval {
			if err := os.MkdirAll(ac.Dir, 0o755); err != nil {
				return Result{}, err
			}
			state, err := cur.SaveState(base)
			if err != nil {
				return Result{}, err
			}
			var meta bytes.Buffer
			if err := gob.NewEncoder(&meta).Encode(autoMeta{NextSegment: k + 1, Cycle: end}); err != nil {
				return Result{}, err
			}
			path := filepath.Join(ac.Dir, fmt.Sprintf("auto-%03d.ckpt", ckptSeq))
			ckptSeq++
			if err := saveCheckpointFile(path, m, []checkpoint.Section{
				{Name: tpccSection, Data: state},
				{Name: autoSection, Data: meta.Bytes()},
			}); err != nil {
				return Result{}, err
			}
			lastCkpt = end
			if ac.Note != nil {
				ac.Note(path)
			}
		}
		if ac.ChaosCrashSegment > 0 && k+1 == ac.ChaosCrashSegment {
			panic(fmt.Sprintf("chaos: injected crash after segment %d", k+1))
		}
	}

	res := finish("TPCC/db", m, end, time.Since(start))
	res.Extra["transactions"] = float64(w.Agents * w.TxPerAgent)
	hits, misses := db.Stats(cur.Cat)
	res.Extra["pool.hits"] = float64(hits)
	res.Extra["pool.misses"] = float64(misses)
	return res, nil
}

// GuardedTPCCAuto builds the supervised runner for AutoCkpt mode: it wires
// the session's checkpoint notebook into the run so crash bundles carry the
// latest auto-checkpoint.
func GuardedTPCCAuto(w TPCCConfig, ac AutoCkpt) GuardedRunner {
	return func(cfg Config, sess *guard.Session) (Result, error) {
		a := ac
		if sess != nil {
			prev := a.Note
			a.Note = func(path string) {
				if prev != nil {
					prev(path)
				}
				sess.NoteCheckpoint(path)
			}
		}
		return RunTPCCAuto(cfg, w, a)
	}
}
