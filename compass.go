// Package compass is a reproduction of COMPASS — the COMmercial PArallel
// Shared memory Simulator (Nanda et al., IPPS 1998) — an execution-driven
// simulator for commercial applications (OLTP, decision support, web
// serving) on shared-memory multiprocessors, with selective operating-
// system simulation.
//
// The package is the public facade: it assembles simulated machines
// (backend architecture models, kernel services, devices, OS server),
// runs the ported workloads (a DB2-like database engine under TPC-C-like
// and TPC-D-like loads, an Apache-like web server under a SPECWeb96-like
// trace), and regenerates the paper's evaluation tables.
//
// Quick start:
//
//	cfg := compass.DefaultConfig()
//	res := compass.RunTPCD(cfg, compass.TPCDConfig{Rows: 8192, Orders: 128, Agents: 4, PoolPages: 48, Seed: 7})
//	fmt.Println(res.Profile)
package compass

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"compass/internal/apps/db"
	"compass/internal/apps/httpd"
	"compass/internal/apps/splash"
	"compass/internal/apps/tier3"
	"compass/internal/apps/tpcc"
	"compass/internal/apps/tpcd"
	"compass/internal/core"
	"compass/internal/fault"
	"compass/internal/frontend"
	"compass/internal/machine"
	"compass/internal/mem"
	"compass/internal/specweb"
	"compass/internal/stats"
	"compass/internal/trace"
)

// Arch selects the simulated target architecture.
type Arch = machine.Arch

// Architecture constants.
const (
	// ArchFixed is a constant-latency memory model.
	ArchFixed = machine.ArchFixed
	// ArchSimple is the paper's simple backend (one cache level per CPU).
	ArchSimple = machine.ArchSimple
	// ArchSMP is a two-level-cache snooping-bus SMP.
	ArchSMP = machine.ArchSMP
	// ArchCCNUMA is the paper's complex backend (CC-NUMA directory).
	ArchCCNUMA = machine.ArchCCNUMA
	// ArchCOMA is a cache-only memory architecture.
	ArchCOMA = machine.ArchCOMA
)

// Placement constants (page home-node assignment, §3.3.1).
const (
	PlaceRoundRobin = mem.PlaceRoundRobin
	PlaceBlock      = mem.PlaceBlock
	PlaceFirstTouch = mem.PlaceFirstTouch
)

// Scheduler constants (§3.3.2).
const (
	SchedFCFS     = core.SchedFCFS
	SchedAffinity = core.SchedAffinity
)

// Config describes the simulated machine; see machine.Config for fields.
type Config = machine.Config

// DefaultConfig returns a 4-CPU simple-backend machine.
func DefaultConfig() Config { return machine.Default() }

// FaultConfig is the deterministic fault plan (Config.Faults); see
// fault.Config for fields. All-zero rates mean no injection.
type FaultConfig = fault.Config

// ParseFaultSpec parses a -faults command-line specification such as
// "seed=42,disk.transient=0.01,net.drop=0.02,mem.ecc=1e-6".
func ParseFaultSpec(spec string) (FaultConfig, error) { return fault.ParseSpec(spec) }

// Workload configuration aliases.
type (
	// TPCCConfig scales the OLTP workload.
	TPCCConfig = tpcc.Config
	// TPCDConfig scales the decision-support workload.
	TPCDConfig = tpcd.Config
	// SPECWebConfig scales the web fileset and trace.
	SPECWebConfig = specweb.Config
	// SORConfig scales the scientific grid solver.
	SORConfig = splash.SORConfig
)

// DefaultTPCC returns the calibrated TPCC scale.
func DefaultTPCC() TPCCConfig { return tpcc.DefaultConfig() }

// DefaultTPCD returns the calibrated TPCD scale.
func DefaultTPCD() TPCDConfig { return tpcd.DefaultConfig() }

// DefaultSPECWeb returns the calibrated SPECWeb scale.
func DefaultSPECWeb() SPECWebConfig { return specweb.DefaultConfig() }

// Result summarizes one simulation run.
type Result struct {
	// Name identifies the workload.
	Name string
	// Cycles is the final simulated time.
	Cycles uint64
	// Profile is the Table-1-style user/OS time breakdown.
	Profile stats.Profile
	// Counters are the backend's statistics (cache hits, traffic, ...).
	Counters *stats.Counters
	// Wall is the host execution time of the simulation.
	Wall time.Duration
	// Extra carries workload-specific numbers (requests served, ...).
	Extra map[string]float64
	// Syscalls is the per-kernel-call cycle breakdown (the paper's
	// "handful of OS calls" analysis), rendered as a table.
	Syscalls string
	// LoadTable is the per-class offered/completed and p50/p90/p99/p999
	// tail-latency table; empty unless the run used the open-loop
	// generator.
	LoadTable string
	// Windows and ParallelWindows count the sharded backend's
	// conservative synchronization windows (zero on a serial run). They
	// are host-side execution facts like Wall, not simulation results:
	// determinism comparisons must exclude them.
	Windows, ParallelWindows uint64
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-14s %12d cycles  wall %8.2fs  %s",
		r.Name, r.Cycles, r.Wall.Seconds(), r.Profile.String())
}

// FaultTable renders the fault-injection and recovery counters; empty
// for a fault-free run.
func (r Result) FaultTable() string { return stats.FormatFaultTable(r.Counters) }

func finish(name string, m *machine.Machine, end uint64, wall time.Duration) Result {
	total := m.Sim.TotalAccount()
	res := Result{
		Name:     name,
		Cycles:   end,
		Profile:  stats.ProfileOf(name, &total),
		Counters: m.Sim.Counters(),
		Wall:     wall,
		Extra:    map[string]float64{},
		Syscalls: m.OS.FormatSyscallProfile(8),
	}
	m.FaultCounters(res.Counters)
	res.Windows, res.ParallelWindows, _ = m.Sim.WindowStats()
	return res
}

// enableClientARQ arms the trace player's link-level retransmission when
// the machine injects network faults — the external client needs the
// same recovery discipline as the host stack.
func enableClientARQ(player *trace.Player, cfg Config) {
	fc := cfg.Faults
	fc.ApplyDefaults()
	if fc.NetEnabled() {
		player.EnableARQ(fc.Net)
	}
}

// RunTPCC runs the OLTP workload to completion.
func RunTPCC(cfg Config, w TPCCConfig) Result {
	m := machine.New(cfg)
	wl := tpcc.Setup(m.FS, w)
	for i := 0; i < w.Agents; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("agent%d", i), func(p *frontend.Proc) {
			wl.Agent(p, i)
		})
	}
	start := time.Now()
	end := m.Sim.Run()
	res := finish("TPCC/db", m, uint64(end), time.Since(start))
	res.Extra["transactions"] = float64(w.Agents * w.TxPerAgent)
	hits, misses := db.Stats(wl.Cat)
	res.Extra["pool.hits"] = float64(hits)
	res.Extra["pool.misses"] = float64(misses)
	return res
}

// TPCDQuery selects which decision-support queries a run executes.
type TPCDQuery int

// Query sets.
const (
	// QueryScanAgg runs Q1 + Q6 (partitioned scans).
	QueryScanAgg TPCDQuery = iota
	// QueryJoin runs the order/lineitem join.
	QueryJoin
	// QueryMmap runs the mmap-based scan.
	QueryMmap
)

// RunTPCD runs decision-support queries with w.Agents parallel agents.
func RunTPCD(cfg Config, w TPCDConfig) Result {
	return RunTPCDQueries(cfg, w, QueryScanAgg, true)
}

// RunTPCDQueries runs a chosen query mix; instrument=false runs with the
// simulation switch off (the paper's "raw" execution for Table 2).
func RunTPCDQueries(cfg Config, w TPCDConfig, q TPCDQuery, instrument bool) Result {
	m := machine.New(cfg)
	wl := tpcd.Setup(m.FS, w)
	pages := wl.LineitemPages()
	for i := 0; i < w.Agents; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("agent%d", i), func(p *frontend.Proc) {
			if !instrument {
				p.SetInstrumentation(false)
			}
			a := db.NewAgent(p, wl.Cat)
			first, last := pages*i/w.Agents, pages*(i+1)/w.Agents
			switch q {
			case QueryScanAgg:
				wl.Q1(p, a, first, last, 1500)
				wl.Q6(p, a, first, last, 100, 1800, 5, 30)
			case QueryJoin:
				wl.Q3Join(p, a, w.Orders*i/w.Agents, w.Orders*(i+1)/w.Agents, 2)
			case QueryMmap:
				if _, err := wl.QMmapScan(p, 1500); err != nil {
					panic(err)
				}
			}
			a.Close()
		})
	}
	start := time.Now()
	end := m.Sim.Run()
	name := "TPCD/db"
	if !instrument {
		name = "TPCD/raw"
	}
	res := finish(name, m, uint64(end), time.Since(start))
	res.Extra["rows"] = float64(w.Rows)
	return res
}

// RunSPECWeb runs the web server under the trace player.
func RunSPECWeb(cfg Config, w SPECWebConfig, workers, concurrency int) Result {
	m := machine.New(cfg)
	specweb.GenerateFileset(m.FS, w)
	reqs := specweb.GenerateTrace(w)
	hcfg := httpd.DefaultConfig()
	hcfg.Workers = workers
	m.FS.SetupCreate(hcfg.LogFile, nil)
	st := make([]httpd.Stats, workers)
	for i := 0; i < workers; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("httpd%d", i), func(p *frontend.Proc) {
			httpd.Worker(p, hcfg, &st[i])
		})
	}
	player := trace.NewPlayer(m.Sim, m.NIC, reqs, trace.PlayerConfig{
		Concurrency: concurrency,
		ThinkCycles: 20_000,
		Workers:     workers,
		Port:        hcfg.Port,
	})
	enableClientARQ(player, cfg)
	player.Start()
	start := time.Now()
	end := m.Sim.Run()
	res := finish("SPECWeb/httpd", m, uint64(end), time.Since(start))
	res.Extra["requests"] = float64(player.Completed)
	res.Extra["latency.mean"] = player.Latency.Mean()
	if player.ARQ() != nil {
		res.Extra["client.failures"] = float64(player.ClientFailures)
	}
	var served, bytes uint64
	for _, s := range st {
		served += s.Served
		bytes += s.BytesSent
	}
	res.Extra["served"] = float64(served)
	res.Extra["bytes"] = float64(bytes)
	return res
}

// RunSOR runs the scientific grid solver (the OS-light contrast workload).
func RunSOR(cfg Config, w SORConfig) Result {
	m := machine.New(cfg)
	s := splash.NewSOR(w)
	for i := 0; i < w.Procs; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("sor%d", i), func(p *frontend.Proc) {
			s.Worker(p, i)
		})
	}
	start := time.Now()
	end := m.Sim.Run()
	return finish("SOR/splash", m, uint64(end), time.Since(start))
}

// WithGOMAXPROCS runs fn with the host parallelism temporarily pinned —
// the Table 2 (uniprocessor host) vs Table 3 (4-way SMP host) experiment.
func WithGOMAXPROCS(n int, fn func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// Tier3Config scales the three-tier dynamic-content stack.
type Tier3Config = tier3.Config

// DefaultTier3 returns the calibrated three-tier scale.
func DefaultTier3() Tier3Config { return tier3.DefaultConfig() }

// RunTier3 runs the dynamic-content stack: trace-driven clients hit
// pre-forked web workers, which query a database tier over loopback
// connections (the full commercial-server composition of §1).
func RunTier3(cfg Config, w Tier3Config, requests int) Result {
	m := machine.New(cfg)
	wl := tier3.Setup(m.FS, w)
	st := make([]tier3.Stats, w.WebWorkers)
	for i := 0; i < w.DBWorkers; i++ {
		m.SpawnConnected(fmt.Sprintf("db%d", i), func(p *frontend.Proc) {
			wl.DBWorker(p)
		})
	}
	for i := 0; i < w.WebWorkers; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("web%d", i), func(p *frontend.Proc) {
			wl.WebWorker(p, &st[i])
		})
	}
	rng := rand.New(rand.NewSource(424242))
	reqs := make(trace.Trace, requests)
	for i := range reqs {
		key := rng.Intn(w.Rows)
		body := fmt.Sprintf("<html>key %d -> VAL %d</html>", key, wl.OracleValue(key))
		reqs[i] = trace.Request{Path: fmt.Sprintf("/dyn/%d", key), Size: len(body)}
	}
	player := trace.NewPlayer(m.Sim, m.NIC, reqs, trace.PlayerConfig{
		Concurrency: w.WebWorkers,
		ThinkCycles: 30_000,
		Workers:     w.WebWorkers,
		Port:        w.WebPort,
	})
	enableClientARQ(player, cfg)
	player.Start()
	start := time.Now()
	end := m.Sim.Run()
	res := finish("tier3", m, uint64(end), time.Since(start))
	res.Extra["requests"] = float64(player.Completed)
	res.Extra["latency.mean"] = player.Latency.Mean()
	if player.ARQ() != nil {
		res.Extra["client.failures"] = float64(player.ClientFailures)
	}
	var ok uint64
	for _, s := range st {
		ok += s.OK
	}
	res.Extra["ok"] = float64(ok)
	return res
}
