package compass

import (
	"fmt"
	"testing"

	"compass/internal/apps/httpd"
	"compass/internal/apps/splash"
	"compass/internal/apps/tpcc"
	"compass/internal/frontend"
	"compass/internal/machine"
	"compass/internal/mem"
	"compass/internal/osserver"
	"compass/internal/simsync"
	"compass/internal/specweb"
	"compass/internal/trace"
)

// runConsolidated puts all three application classes on one simulated
// machine — OLTP agents, web workers under client load, and a scientific
// kernel — the mixed commercial server the paper's simulator was built to
// study. Returns (final cycle, total charged cycles, completed web
// requests, tpcc verify error).
func runConsolidated(t *testing.T) (uint64, uint64, uint64, error) {
	t.Helper()
	cfg := machine.Default()
	cfg.CPUs = 4
	cfg.Scheduler = 1 // affinity
	m := machine.New(cfg)

	// OLTP tier.
	tw := tpcc.DefaultConfig()
	tw.Agents = 2
	tw.TxPerAgent = 8
	wl := tpcc.Setup(m.FS, tw)
	var verifyErr error
	finishedWord := 40 // spare lock word in the buffer-pool segment header
	for i := 0; i < tw.Agents; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("oltp%d", i), func(p *frontend.Proc) {
			wl.Agent(p, i)
			os := osserver.For(p)
			segID, _ := os.ShmGet(wl.Cat.ShmKey, wl.Cat.SegmentBytes())
			base, _ := os.ShmAt(segID)
			(&simsync.Counter{Addr: base + mem.VirtAddr(4*finishedWord)}).Add(p, 1)
		})
	}

	// Web tier with its own fileset and client population.
	sw := specweb.DefaultConfig()
	sw.Requests = 25
	specweb.GenerateFileset(m.FS, sw)
	hcfg := httpd.DefaultConfig()
	hcfg.Workers = 2
	hcfg.LogFile = "" // keep the fs namespace tidy
	st := make([]httpd.Stats, hcfg.Workers)
	for i := 0; i < hcfg.Workers; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("httpd%d", i), func(p *frontend.Proc) {
			httpd.Worker(p, hcfg, &st[i])
		})
	}
	player := trace.NewPlayer(m.Sim, m.NIC, specweb.GenerateTrace(sw), trace.PlayerConfig{
		Concurrency: 2, ThinkCycles: 40_000, Workers: hcfg.Workers, Port: hcfg.Port,
	})
	player.Start()

	// Background scientific job competing for CPUs.
	sor := splash.NewSOR(splash.SORConfig{N: 18, Iters: 3, Procs: 2})
	for i := 0; i < 2; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("sor%d", i), func(p *frontend.Proc) {
			sor.Worker(p, i)
		})
	}

	// A verifier process waits (via a shared counter) for every OLTP agent
	// to finish, then checks database consistency in-simulation.
	m.SpawnConnected("verify", func(p *frontend.Proc) {
		os := osserver.For(p)
		segID, _ := os.ShmGet(wl.Cat.ShmKey, wl.Cat.SegmentBytes())
		base, _ := os.ShmAt(segID)
		finished := &simsync.Counter{Addr: base + mem.VirtAddr(4*finishedWord)}
		for finished.Load(p) < uint64(tw.Agents) {
			p.ComputeCycles(100_000)
			p.Yield()
		}
		verifyErr = wl.VerifyOrders(p)
	})

	end := m.Sim.Run()
	total := m.Sim.TotalAccount()

	var served uint64
	for _, s := range st {
		served += s.Served
	}
	if served != player.Completed {
		t.Errorf("served %d != completed %d", served, player.Completed)
	}
	// The SOR result must still match its oracle despite the competition.
	want := splash.HostSOR(splash.SORConfig{N: 18, Iters: 3, Procs: 2})
	got := sor.Grid()
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("SOR diverged under consolidation at %d", i)
			break
		}
	}
	return uint64(end), total.Total(), player.Completed, verifyErr
}

func TestConsolidatedWorkloads(t *testing.T) {
	end, total, completed, verifyErr := runConsolidated(t)
	if completed != 25 {
		t.Errorf("web requests completed: %d/25", completed)
	}
	if verifyErr != nil {
		t.Errorf("OLTP verification failed under consolidation: %v", verifyErr)
	}
	if end == 0 || total == 0 {
		t.Error("empty run")
	}
}

func TestConsolidatedDeterministic(t *testing.T) {
	e1, t1, c1, v1 := runConsolidated(t)
	e2, t2, c2, v2 := runConsolidated(t)
	if e1 != e2 || t1 != t2 || c1 != c2 {
		t.Errorf("nondeterministic consolidation: end %d/%d total %d/%d web %d/%d",
			e1, e2, t1, t2, c1, c2)
	}
	if (v1 == nil) != (v2 == nil) {
		t.Error("verification outcome differs across replays")
	}
}
