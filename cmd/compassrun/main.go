// Command compassrun executes one workload on a configured simulated
// machine and prints the time profile and backend statistics.
//
// Usage:
//
//	compassrun -workload tpcc -cpus 4 -arch simple -sched affinity
//	compassrun -workload specweb -cpus 4 -requests 200
//	compassrun -workload tpcd -arch ccnuma -nodes 4 -placement first-touch
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"compass"
)

func main() {
	var (
		workload  = flag.String("workload", "tpcd", "tpcc | tpcd | specweb | sor")
		cpus      = flag.Int("cpus", 4, "simulated CPUs")
		arch      = flag.String("arch", "simple", "fixed | simple | smp | ccnuma | coma")
		nodes     = flag.Int("nodes", 1, "NUMA nodes (ccnuma/coma)")
		placement = flag.String("placement", "round-robin", "round-robin | block | first-touch")
		sched     = flag.String("sched", "fcfs", "fcfs | affinity")
		preempt   = flag.Bool("preempt", false, "preemptive scheduling")
		agents    = flag.Int("agents", 4, "workload processes")
		tx        = flag.Int("tx", 25, "tpcc: transactions per agent")
		rows      = flag.Int("rows", 16384, "tpcd: lineitem rows")
		requests  = flag.Int("requests", 120, "specweb: trace length")
		counters  = flag.Bool("counters", false, "dump backend counters")
		syscalls  = flag.Bool("syscalls", false, "dump per-kernel-call profile")
		syncd     = flag.Uint64("syncd", 0, "buffer-cache flush daemon interval in cycles (0 = off)")
		migrate   = flag.Int("migrate", 0, "ccnuma page-migration threshold (0 = off)")
		faults    = flag.String("faults", "", `fault plan, e.g. "seed=7,disk.transient=0.01,net.drop=0.02,mem.ecc=1e-6"`)
	)
	flag.Parse()

	cfg := compass.DefaultConfig()
	cfg.CPUs = *cpus
	cfg.Nodes = *nodes
	switch *arch {
	case "fixed":
		cfg.Arch = compass.ArchFixed
	case "simple":
		cfg.Arch = compass.ArchSimple
	case "smp":
		cfg.Arch = compass.ArchSMP
	case "ccnuma":
		cfg.Arch = compass.ArchCCNUMA
	case "coma":
		cfg.Arch = compass.ArchCOMA
	default:
		fmt.Fprintf(os.Stderr, "unknown arch %q\n", *arch)
		os.Exit(2)
	}
	switch *placement {
	case "round-robin":
		cfg.Placement = compass.PlaceRoundRobin
	case "block":
		cfg.Placement = compass.PlaceBlock
	case "first-touch":
		cfg.Placement = compass.PlaceFirstTouch
	default:
		fmt.Fprintf(os.Stderr, "unknown placement %q\n", *placement)
		os.Exit(2)
	}
	if *sched == "affinity" {
		cfg.Scheduler = compass.SchedAffinity
	}
	cfg.Preemptive = *preempt
	cfg.SyncdInterval = *syncd
	cfg.MigrateThreshold = *migrate
	if *faults != "" {
		fc, err := compass.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -faults spec: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = fc
	}

	var res compass.Result
	switch *workload {
	case "tpcc":
		w := compass.DefaultTPCC()
		w.Agents = *agents
		w.TxPerAgent = *tx
		res = compass.RunTPCC(cfg, w)
	case "tpcd":
		w := compass.DefaultTPCD()
		w.Agents = *agents
		w.Rows = *rows
		res = compass.RunTPCD(cfg, w)
	case "specweb":
		w := compass.DefaultSPECWeb()
		w.Requests = *requests
		res = compass.RunSPECWeb(cfg, w, *agents, *agents*2)
	case "sor":
		res = compass.RunSOR(cfg, compass.SORConfig{N: 64, Iters: 6, Procs: *agents})
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	fmt.Println(res)
	keys := make([]string, 0, len(res.Extra))
	for k := range res.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s %.1f\n", k, res.Extra[k])
	}
	if ft := res.FaultTable(); ft != "" {
		fmt.Println()
		fmt.Print(ft)
	}
	if *counters {
		fmt.Println()
		fmt.Print(res.Counters.String())
	}
	if *syscalls {
		fmt.Println()
		fmt.Print(res.Syscalls)
	}
}
