// Command compassrun executes one workload on a configured simulated
// machine and prints the time profile and backend statistics.
//
// Usage:
//
//	compassrun -workload tpcc -cpus 4 -arch simple -sched affinity
//	compassrun -workload specweb -cpus 4 -requests 200
//	compassrun -workload tpcd -arch ccnuma -nodes 4 -placement first-touch
//
// Open-loop load generation (internal/loadgen) replaces the closed-loop
// trace player on the web workloads and prints a per-class tail-latency
// table alongside the time profile:
//
//	compassrun -workload specweb -load "requests=400;class=web,clients=1000000,interval=1e9"
//	compassrun -workload tier3 -load "class=dyn,rate=40,flash=2e6:4e6:8"
//
// Parallel experiment modes (the internal/expt engine):
//
//	compassrun -workload tpcc -faults "seed=7,disk.transient=0.01" -seeds 8 -parallel 4 -progress
//	compassrun -sweepbench BENCH_sweep.json -parallel 0
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"compass"
)

func main() {
	var (
		workload   = flag.String("workload", "tpcd", "tpcc | tpcd | specweb | tier3 | sor")
		cpus       = flag.Int("cpus", 4, "simulated CPUs")
		arch       = flag.String("arch", "simple", "fixed | simple | smp | ccnuma | coma")
		nodes      = flag.Int("nodes", 1, "NUMA nodes (ccnuma/coma)")
		placement  = flag.String("placement", "round-robin", "round-robin | block | first-touch")
		sched      = flag.String("sched", "fcfs", "fcfs | affinity")
		preempt    = flag.Bool("preempt", false, "preemptive scheduling")
		agents     = flag.Int("agents", 4, "workload processes")
		tx         = flag.Int("tx", 25, "tpcc: transactions per agent")
		rows       = flag.Int("rows", 16384, "tpcd: lineitem rows")
		requests   = flag.Int("requests", 120, "specweb: trace length")
		counters   = flag.Bool("counters", false, "dump backend counters")
		syscalls   = flag.Bool("syscalls", false, "dump per-kernel-call profile")
		syncd      = flag.Uint64("syncd", 0, "buffer-cache flush daemon interval in cycles (0 = off)")
		migrate    = flag.Int("migrate", 0, "ccnuma page-migration threshold (0 = off)")
		faults     = flag.String("faults", "", `fault plan, e.g. "seed=7,disk.transient=0.01,net.drop=0.02,mem.ecc=1e-6"`)
		load       = flag.String("load", "", `open-loop traffic plan (specweb/tier3), e.g. "requests=400;class=web,clients=1000000,interval=1e9,flash=2e6:4e6:8"`)
		parallel   = flag.Int("parallel", 1, "experiment-engine workers (0 = host cores)")
		seeds      = flag.Int("seeds", 0, "fault-seed campaign: run this many consecutive seeds from the -faults base seed")
		progress   = flag.Bool("progress", false, "print an engine progress line to stderr")
		benchPath  = flag.String("sweepbench", "", "run the serial-vs-parallel batch sweep bench and write JSON here")
		coreBench  = flag.String("corebench", "", "run the single-run engine throughput bench and write JSON here")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	cfg := compass.DefaultConfig()
	cfg.CPUs = *cpus
	cfg.Nodes = *nodes
	switch *arch {
	case "fixed":
		cfg.Arch = compass.ArchFixed
	case "simple":
		cfg.Arch = compass.ArchSimple
	case "smp":
		cfg.Arch = compass.ArchSMP
	case "ccnuma":
		cfg.Arch = compass.ArchCCNUMA
	case "coma":
		cfg.Arch = compass.ArchCOMA
	default:
		fmt.Fprintf(os.Stderr, "unknown arch %q\n", *arch)
		os.Exit(2)
	}
	switch *placement {
	case "round-robin":
		cfg.Placement = compass.PlaceRoundRobin
	case "block":
		cfg.Placement = compass.PlaceBlock
	case "first-touch":
		cfg.Placement = compass.PlaceFirstTouch
	default:
		fmt.Fprintf(os.Stderr, "unknown placement %q\n", *placement)
		os.Exit(2)
	}
	if *sched == "affinity" {
		cfg.Scheduler = compass.SchedAffinity
	}
	cfg.Preemptive = *preempt
	cfg.SyncdInterval = *syncd
	cfg.MigrateThreshold = *migrate
	if *faults != "" {
		fc, err := compass.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -faults spec: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = fc
	}

	opts := compass.ExptOptions{Workers: *parallel}
	if *progress {
		opts.Progress = progressLine
	}

	if *benchPath != "" {
		// 8 points at ~100ms of host time each: long enough that the
		// speedup measurement is not startup noise, short enough for CI.
		bench, err := compass.RunSweepBench(cfg, []int{1, 2, 4, 8, 16, 32, 64, 128}, 5000, 50000, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep bench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteFile(*benchPath); err != nil {
			fmt.Fprintf(os.Stderr, "sweep bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench)
		return
	}

	if *coreBench != "" {
		bench, err := compass.RunCoreBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "core bench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteFile(*coreBench); err != nil {
			fmt.Fprintf(os.Stderr, "core bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench)
		return
	}

	var lc compass.LoadConfig
	if *load != "" {
		var err error
		if lc, err = compass.ParseLoadSpec(*load); err != nil {
			fmt.Fprintf(os.Stderr, "bad -load spec: %v\n", err)
			os.Exit(2)
		}
	}
	mustLoad := func(res compass.Result, err error) compass.Result {
		if err != nil {
			fmt.Fprintf(os.Stderr, "load run: %v\n", err)
			os.Exit(1)
		}
		return res
	}

	var runner func(compass.Config) compass.Result
	switch *workload {
	case "tpcc":
		w := compass.DefaultTPCC()
		w.Agents = *agents
		w.TxPerAgent = *tx
		runner = func(c compass.Config) compass.Result { return compass.RunTPCC(c, w) }
	case "tpcd":
		w := compass.DefaultTPCD()
		w.Agents = *agents
		w.Rows = *rows
		runner = func(c compass.Config) compass.Result { return compass.RunTPCD(c, w) }
	case "specweb":
		if *load != "" {
			runner = func(c compass.Config) compass.Result { return mustLoad(compass.RunLoadHTTPD(c, lc, *agents)) }
			break
		}
		w := compass.DefaultSPECWeb()
		w.Requests = *requests
		runner = func(c compass.Config) compass.Result { return compass.RunSPECWeb(c, w, *agents, *agents*2) }
	case "tier3":
		w := compass.DefaultTier3()
		if *load != "" {
			runner = func(c compass.Config) compass.Result { return mustLoad(compass.RunLoadTier3(c, w, lc)) }
			break
		}
		runner = func(c compass.Config) compass.Result { return compass.RunTier3(c, w, *requests) }
	case "sor":
		runner = func(c compass.Config) compass.Result {
			return compass.RunSOR(c, compass.SORConfig{N: 64, Iters: 6, Procs: *agents})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	if *seeds > 0 {
		camp := compass.RunSeedCampaign(cfg, compass.CampaignSeeds(cfg.Faults.Seed, *seeds), runner, opts)
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Print(camp)
		if ft := camp.FaultTable(); ft != "" {
			fmt.Println()
			fmt.Print(ft)
		}
		fmt.Printf("campaign wall %.2fs on %d workers\n", camp.Wall.Seconds(), camp.Workers)
		return
	}

	res := runner(cfg)
	fmt.Println(res)
	keys := make([]string, 0, len(res.Extra))
	//det:ordered keys are sorted before printing
	for k := range res.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s %.1f\n", k, res.Extra[k])
	}
	if res.LoadTable != "" {
		fmt.Println()
		fmt.Print(res.LoadTable)
	}
	if ft := res.FaultTable(); ft != "" {
		fmt.Println()
		fmt.Print(ft)
	}
	if *counters {
		fmt.Println()
		fmt.Print(res.Counters.String())
	}
	if *syscalls {
		fmt.Println()
		fmt.Print(res.Syscalls)
	}
}

// progressLine rewrites one stderr line per engine update:
// done/total, in-flight, simulated cycles completed, ETA.
func progressLine(p compass.Progress) {
	fmt.Fprintf(os.Stderr, "\rexpt %d/%d done, %d in flight, %.2e sim cycles, ETA %s   ",
		p.Done, p.Total, p.InFlight, float64(p.DoneCycles), p.ETA.Round(100_000_000))
}
