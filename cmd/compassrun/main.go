// Command compassrun executes one workload on a configured simulated
// machine and prints the time profile and backend statistics.
//
// Usage:
//
//	compassrun -workload tpcc -cpus 4 -arch simple -sched affinity
//	compassrun -workload specweb -cpus 4 -requests 200
//	compassrun -workload tpcd -arch ccnuma -nodes 4 -placement first-touch
//
// Open-loop load generation (internal/loadgen) replaces the closed-loop
// trace player on the web workloads and prints a per-class tail-latency
// table alongside the time profile:
//
//	compassrun -workload specweb -load "requests=400;class=web,clients=1000000,interval=1e9"
//	compassrun -workload tier3 -load "class=dyn,rate=40,flash=2e6:4e6:8"
//
// Parallel experiment modes (the internal/expt engine):
//
//	compassrun -workload tpcc -faults "seed=7,disk.transient=0.01" -seeds 8 -parallel 4 -progress
//	compassrun -sweepbench BENCH_sweep.json -parallel 0
//
// Supervised runs (internal/guard): every run is panic-contained and, with
// the flags below, watched, auto-checkpointed and retried. A failed run
// prints a single structured line (kind=panic|deadlock|watchdog|livelock|
// quarantine ...) to stderr and exits 1 instead of dumping a raw stack:
//
//	compassrun -workload tpcc -deadline 30s -stall 5s -bundle /tmp/bundles
//	compassrun -workload tpcc -seeds 4 -retries 2 -autockpt 50000:/tmp/ckpt
//	compassrun -repro /tmp/bundles/seed9-attempt0
//
// -repro replays a crash bundle from scratch and exits 0 iff the bundled
// failure reproduces with the same kind (the deterministic-replay check).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"compass"
	"compass/internal/guard"
)

func main() {
	var (
		workload   = flag.String("workload", "tpcd", "tpcc | tpcd | specweb | tier3 | sor")
		cpus       = flag.Int("cpus", 4, "simulated CPUs")
		shards     = flag.Int("shards", 0, "backend lanes sharing one simulation across host cores (0/1 = serial; results are byte-identical at any value)")
		arch       = flag.String("arch", "simple", "fixed | simple | smp | ccnuma | coma")
		nodes      = flag.Int("nodes", 1, "NUMA nodes (ccnuma/coma)")
		placement  = flag.String("placement", "round-robin", "round-robin | block | first-touch")
		sched      = flag.String("sched", "fcfs", "fcfs | affinity")
		preempt    = flag.Bool("preempt", false, "preemptive scheduling")
		rtc        = flag.Bool("rtc", true, "interval timer (timer interrupts)")
		agents     = flag.Int("agents", 4, "workload processes")
		tx         = flag.Int("tx", 25, "tpcc: transactions per agent")
		rows       = flag.Int("rows", 16384, "tpcd: lineitem rows")
		requests   = flag.Int("requests", 120, "specweb: trace length")
		counters   = flag.Bool("counters", false, "dump backend counters")
		syscalls   = flag.Bool("syscalls", false, "dump per-kernel-call profile")
		syncd      = flag.Uint64("syncd", 0, "buffer-cache flush daemon interval in cycles (0 = off)")
		migrate    = flag.Int("migrate", 0, "ccnuma page-migration threshold (0 = off)")
		faults     = flag.String("faults", "", `fault plan, e.g. "seed=7,disk.transient=0.01,net.drop=0.02,mem.ecc=1e-6"`)
		load       = flag.String("load", "", `open-loop traffic plan (specweb/tier3), e.g. "requests=400;class=web,clients=1000000,interval=1e9,flash=2e6:4e6:8"`)
		parallel   = flag.Int("parallel", 1, "experiment-engine workers (0 = host cores)")
		seeds      = flag.Int("seeds", 0, "fault-seed campaign: run this many consecutive seeds from the -faults base seed")
		progress   = flag.Bool("progress", false, "print an engine progress line to stderr")
		deadline   = flag.Duration("deadline", 0, "abort a run after this much host time (0 = off)")
		stall      = flag.Duration("stall", 0, "abort a run whose event dispatch stalls for this much host time (0 = off)")
		retries    = flag.Int("retries", 0, "campaign: retry a failed seed this many times before quarantine")
		bundleDir  = flag.String("bundle", "", "write crash-repro bundles under this directory on failure")
		autockpt   = flag.String("autockpt", "", `auto-checkpointing (tpcc): "interval:dir", e.g. "50000:/tmp/ckpt"`)
		segments   = flag.Int("segments", 0, "tpcc: quiescent segments for auto-checkpointing (default 4 when -autockpt is set)")
		chaos      = flag.String("chaos", "", `failure injection: comma-separated "crashseed=N", "crashsegment=N", "block"`)
		repro      = flag.String("repro", "", "replay the crash-repro bundle in this directory and verify the failure reproduces")
		benchPath  = flag.String("sweepbench", "", "run the serial-vs-parallel batch sweep bench and write JSON here")
		coreBench  = flag.String("corebench", "", "run the single-run engine throughput bench and write JSON here")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	gcfg := compass.GuardConfig{
		Deadline:  *deadline,
		Stall:     *stall,
		Retries:   *retries,
		BundleDir: *bundleDir,
	}

	if *repro != "" {
		os.Exit(runRepro(*repro, gcfg))
	}

	spec := compass.RunSpec{
		Workload:  *workload,
		CPUs:      *cpus,
		Shards:    *shards,
		Arch:      *arch,
		Nodes:     *nodes,
		Placement: *placement,
		Sched:     *sched,
		Preempt:   *preempt,
		RTC:       *rtc,
		Agents:    *agents,
		Tx:        *tx,
		Rows:      *rows,
		Requests:  *requests,
		Syncd:     *syncd,
		Migrate:   *migrate,
		Faults:    *faults,
		Load:      *load,
		Segments:  *segments,
		Chaos:     *chaos,
	}
	if *autockpt != "" {
		interval, dir, ok := strings.Cut(*autockpt, ":")
		iv, err := strconv.ParseUint(interval, 10, 64)
		if !ok || err != nil || dir == "" {
			fmt.Fprintf(os.Stderr, "bad -autockpt %q (want interval:dir)\n", *autockpt)
			os.Exit(2)
		}
		spec.AutoCkptInterval = iv
		spec.AutoCkptDir = dir
		if spec.Segments == 0 {
			spec.Segments = 4
		}
	}

	cfg, err := compass.SpecConfig(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := compass.ExptOptions{Workers: *parallel}
	if *progress {
		opts.Progress = progressLine
	}

	if *benchPath != "" {
		// 8 points at ~100ms of host time each: long enough that the
		// speedup measurement is not startup noise, short enough for CI.
		bench, err := compass.RunSweepBench(cfg, []int{1, 2, 4, 8, 16, 32, 64, 128}, 5000, 50000, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep bench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteFile(*benchPath); err != nil {
			fmt.Fprintf(os.Stderr, "sweep bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench)
		return
	}

	if *coreBench != "" {
		bench, err := compass.RunCoreBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "core bench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteFile(*coreBench); err != nil {
			fmt.Fprintf(os.Stderr, "core bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench)
		return
	}

	if *seeds > 0 {
		runner, err := compass.SpecRunner(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := compass.SpecChaos(spec, &cfg, &gcfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		gcfg.Spec = spec
		camp := compass.RunSeedCampaignGuarded(cfg, compass.CampaignSeeds(cfg.Faults.Seed, *seeds), gcfg, runner, opts)
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Print(camp)
		if ft := camp.FaultTable(); ft != "" {
			fmt.Println()
			fmt.Print(ft)
		}
		fmt.Printf("campaign wall %.2fs on %d workers\n", camp.Wall.Seconds(), camp.Workers)
		if len(camp.Failed) > 0 {
			for _, f := range camp.Failed {
				line := fmt.Sprintf("kind=quarantine point=seed%d attempts=%d last=%s reason=%q",
					f.Seed, f.Attempts, f.Kind, f.Reason)
				if f.Bundle != "" {
					line += " bundle=" + f.Bundle
				}
				fmt.Fprintln(os.Stderr, line)
			}
			os.Exit(1)
		}
		return
	}

	res, err := compass.RunSpecGuarded(spec, gcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, guard.OneLine(err))
		os.Exit(1)
	}
	fmt.Println(res)
	keys := make([]string, 0, len(res.Extra))
	//det:ordered keys are sorted before printing
	for k := range res.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s %.1f\n", k, res.Extra[k])
	}
	if res.LoadTable != "" {
		fmt.Println()
		fmt.Print(res.LoadTable)
	}
	if ft := res.FaultTable(); ft != "" {
		fmt.Println()
		fmt.Print(ft)
	}
	if *counters {
		fmt.Println()
		fmt.Print(res.Counters.String())
	}
	if *syscalls {
		fmt.Println()
		fmt.Print(res.Syscalls)
	}
}

// runRepro replays a crash-repro bundle from scratch and reports whether
// the bundled failure reproduces. Exit status: 0 when the replay fails
// with the bundled kind (reproduced), 1 otherwise (clean run or a
// different failure — the bundle does not describe a deterministic crash).
func runRepro(dir string, gcfg compass.GuardConfig) int {
	m, err := guard.ReadBundle(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		return 2
	}
	// Replay from scratch: resume salvage is for inspection, not for the
	// determinism check, so the replay ignores the bundled checkpoint by
	// redirecting auto-checkpointing to a scratch directory.
	spec := m.Spec
	if spec.AutoCkptDir != "" {
		scratch, err := os.MkdirTemp("", "compass-repro-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 2
		}
		defer os.RemoveAll(scratch)
		spec.AutoCkptDir = scratch
	}
	gcfg.BundleDir = "" // a repro of a crash should not mint more bundles
	deadline := gcfg.Deadline
	if deadline <= 0 && (m.Kind == guard.KindWatchdog.String() || m.Kind == guard.KindLivelock.String()) {
		// Watchdog failures only reproduce under a watchdog.
		deadline = 30 * time.Second
		gcfg.Deadline = deadline
	}
	_, err = compass.RunSpecGuarded(spec, gcfg)
	if err == nil {
		fmt.Fprintf(os.Stderr, "repro: run completed cleanly; bundled failure (kind=%s) did not reproduce\n", m.Kind)
		return 1
	}
	var a *guard.Abort
	if errors.As(err, &a) && a.Kind.String() == m.Kind {
		fmt.Printf("repro: reproduced %s\n", guard.OneLine(err))
		return 0
	}
	fmt.Fprintf(os.Stderr, "repro: bundled kind=%s but replay produced %s\n", m.Kind, guard.OneLine(err))
	return 1
}

// progressLine rewrites one stderr line per engine update:
// done/total, in-flight, simulated cycles completed, ETA.
func progressLine(p compass.Progress) {
	fmt.Fprintf(os.Stderr, "\rexpt %d/%d done, %d in flight, %.2e sim cycles, ETA %s   ",
		p.Done, p.Total, p.InFlight, float64(p.DoneCycles), p.ETA.Round(100_000_000))
}
