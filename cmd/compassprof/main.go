// Command compassprof regenerates the paper's Table 1 ("User vs. OS
// time"): the user / OS / interrupt-handler / kernel split for
// SPECWeb/httpd, TPCD/db and TPCC/db on a 4-way simulated machine, with
// the paper's reported values alongside.
package main

import (
	"flag"
	"fmt"

	"compass"
)

func main() {
	var (
		cpus     = flag.Int("cpus", 4, "simulated CPUs")
		tx       = flag.Int("tpcc-tx", 25, "TPCC transactions per agent")
		rows     = flag.Int("tpcd-rows", 16384, "TPCD lineitem rows")
		requests = flag.Int("web-requests", 120, "SPECWeb trace length")
	)
	flag.Parse()

	scale := compass.DefaultTable1Scale()
	scale.CPUs = *cpus
	scale.TPCCTx = *tx
	scale.TPCDRows = *rows
	scale.WebRequests = *requests
	table := compass.Table1(scale)
	fmt.Println("Table 1: User vs. OS time")
	fmt.Print(compass.FormatTable1(table))
	fmt.Println()
	fmt.Println("Per-kernel-call breakdown (the paper's \"handful of OS calls\"):")
	for _, r := range table {
		fmt.Printf("\n%s\n%s", r.Profile.Name, r.Syscalls)
	}
}
