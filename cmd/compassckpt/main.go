// Command compassckpt creates, inspects, and resumes warm-start machine
// snapshots. A snapshot captures a quiescent machine after a workload's
// warm phase; resuming it runs only the measured phase and produces
// bit-identical stats to the uninterrupted two-phase run.
//
// Usage:
//
//	compassckpt -create warm.ckpt -workload tpcc -cpus 4
//	compassckpt -info warm.ckpt
//	compassckpt -resume warm.ckpt -workload tpcc -tx 30
package main

import (
	"flag"
	"fmt"
	"os"

	"compass"
	"compass/internal/checkpoint"
)

func main() {
	var (
		create   = flag.String("create", "", "run the warm phase and write a snapshot to this path")
		info     = flag.String("info", "", "print a snapshot's header (cycle, config hash, stats summary)")
		resume   = flag.String("resume", "", "restore this snapshot and run the measured phase")
		workload = flag.String("workload", "tpcc", "tpcc | specweb")
		cpus     = flag.Int("cpus", 4, "simulated CPUs")
		arch     = flag.String("arch", "simple", "fixed | simple | smp | ccnuma | coma")
		agents   = flag.Int("agents", 4, "workload processes (tpcc agents / httpd workers)")
		tx       = flag.Int("tx", 25, "tpcc: measured transactions per agent")
		warmTx   = flag.Int("warmtx", 10, "tpcc: warm-phase transactions per agent")
		requests = flag.Int("requests", 120, "specweb: measured trace length")
		warmReq  = flag.Int("warmreqs", 60, "specweb: warm-phase trace length")
	)
	flag.Parse()

	if *info != "" {
		printInfo(*info)
		return
	}
	if (*create == "") == (*resume == "") {
		fmt.Fprintln(os.Stderr, "compassckpt: need exactly one of -create, -info, -resume")
		os.Exit(2)
	}

	cfg := compass.DefaultConfig()
	cfg.CPUs = *cpus
	switch *arch {
	case "fixed":
		cfg.Arch = compass.ArchFixed
	case "simple":
		cfg.Arch = compass.ArchSimple
	case "smp":
		cfg.Arch = compass.ArchSMP
	case "ccnuma":
		cfg.Arch = compass.ArchCCNUMA
	case "coma":
		cfg.Arch = compass.ArchCOMA
	default:
		fmt.Fprintf(os.Stderr, "unknown arch %q\n", *arch)
		os.Exit(2)
	}

	opts := compass.RunOptions{WarmupCheckpoint: *create, ResumeFrom: *resume}
	var (
		res compass.Result
		err error
	)
	switch *workload {
	case "tpcc":
		warm := compass.DefaultTPCC()
		warm.Agents = *agents
		warm.TxPerAgent = *warmTx
		measured := warm
		measured.TxPerAgent = *tx
		measured.Seed = warm.Seed + 1
		res, err = compass.RunTPCCWithOptions(cfg, warm, measured, opts)
	case "specweb":
		warm := compass.DefaultSPECWeb()
		warm.Requests = *warmReq
		measured := warm
		measured.Requests = *requests
		measured.Seed = warm.Seed + 1
		res, err = compass.RunSPECWebWithOptions(cfg, warm, measured, *agents, *agents, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "compassckpt: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res)
	if *create != "" {
		printInfo(*create)
	}
}

func printInfo(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compassckpt: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	inf, err := checkpoint.ReadInfo(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compassckpt: %v\n", err)
		os.Exit(1)
	}
	st, _ := f.Stat()
	total := inf.UserCycles + inf.KernelCycles + inf.IntrCycles
	fmt.Printf("checkpoint      %s (%d bytes)\n", path, st.Size())
	fmt.Printf("format version  %d\n", inf.Version)
	fmt.Printf("config hash     %x\n", inf.ConfigHash)
	fmt.Printf("cycle           %d\n", inf.Cycle)
	fmt.Printf("cpu cycles      %d (user %d, kernel %d, interrupt %d)\n",
		total, inf.UserCycles, inf.KernelCycles, inf.IntrCycles)
}
