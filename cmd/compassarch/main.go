// Command compassarch runs one workload across the simulated target
// architectures (the paper's §5 study: "a variety of shared memory
// architectures such as CCNUMA, COMA and software DSM multiprocessors")
// and prints a comparison table.
package main

import (
	"flag"
	"fmt"
	"os"

	"compass"
)

func main() {
	var (
		workload = flag.String("workload", "sor", "sor | tpcd | tpcc")
		nodes    = flag.Int("nodes", 4, "NUMA nodes for ccnuma/coma/dsm")
		n        = flag.Int("n", 96, "sor: grid dimension")
		rows     = flag.Int("rows", 8192, "tpcd: lineitem rows")
		tx       = flag.Int("tx", 15, "tpcc: transactions per agent")
	)
	flag.Parse()

	type cell struct {
		name string
		run  func() compass.Result
	}
	mk := func(arch compass.Arch, nn int) compass.Config {
		cfg := compass.DefaultConfig()
		cfg.Arch = arch
		cfg.Nodes = nn
		if arch == compass.ArchCCNUMA {
			cfg.Placement = compass.PlaceFirstTouch
		}
		return cfg
	}
	var cells []cell
	switch *workload {
	case "sor":
		w := compass.SORConfig{N: *n, Iters: 5, Procs: 4}
		cells = []cell{
			{"smp", func() compass.Result { return compass.RunSOR(mk(compass.ArchSMP, 1), w) }},
			{"ccnuma", func() compass.Result { return compass.RunSOR(mk(compass.ArchCCNUMA, *nodes), w) }},
			{"coma", func() compass.Result { return compass.RunSOR(mk(compass.ArchCOMA, *nodes), w) }},
			{"sw-dsm", func() compass.Result { return compass.RunSORDSM(compass.DefaultConfig(), w) }},
		}
	case "tpcd":
		w := compass.DefaultTPCD()
		w.Rows = *rows
		cells = []cell{
			{"simple", func() compass.Result { return compass.RunTPCD(mk(compass.ArchSimple, 1), w) }},
			{"smp", func() compass.Result { return compass.RunTPCD(mk(compass.ArchSMP, 1), w) }},
			{"ccnuma", func() compass.Result { return compass.RunTPCD(mk(compass.ArchCCNUMA, *nodes), w) }},
			{"coma", func() compass.Result { return compass.RunTPCD(mk(compass.ArchCOMA, *nodes), w) }},
		}
	case "tpcc":
		w := compass.DefaultTPCC()
		w.TxPerAgent = *tx
		cells = []cell{
			{"simple", func() compass.Result { return compass.RunTPCC(mk(compass.ArchSimple, 1), w) }},
			{"smp", func() compass.Result { return compass.RunTPCC(mk(compass.ArchSMP, 1), w) }},
			{"ccnuma", func() compass.Result { return compass.RunTPCC(mk(compass.ArchCCNUMA, *nodes), w) }},
			{"coma", func() compass.Result { return compass.RunTPCC(mk(compass.ArchCOMA, *nodes), w) }},
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	fmt.Printf("architecture study: %s\n", *workload)
	fmt.Printf("%-8s %14s %8s %8s %8s\n", "target", "sim cycles", "user%", "OS%", "wall(s)")
	base := uint64(0)
	for _, c := range cells {
		res := c.run()
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-8s %14d %7.1f%% %7.1f%% %8.2f   (%.2fx of %s)\n",
			c.name, res.Cycles, res.Profile.UserPct, res.Profile.OSPct,
			res.Wall.Seconds(), float64(res.Cycles)/float64(base), cells[0].name)
	}
}
