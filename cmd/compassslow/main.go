// Command compassslow regenerates the paper's Tables 2 and 3 (simulation
// slowdown): the TPCD query run raw (simulation switch off), under the
// simple backend (one cache level) and under the complex backend
// (CC-NUMA), on a uniprocessor host (Table 2, GOMAXPROCS=1) and a 4-way
// host (Table 3, GOMAXPROCS=4).
package main

import (
	"flag"
	"fmt"

	"compass"
)

func main() {
	var (
		rows   = flag.Int("rows", 16384, "TPCD lineitem rows")
		agents = flag.Int("agents", 4, "frontend processes")
		cpus   = flag.Int("cpus", 4, "simulated CPUs")
		host   = flag.Int("host", 4, "host CPUs for the Table-3 run")
	)
	flag.Parse()

	fmt.Println("Table 2: slowdown on uniprocessor host")
	t2 := compass.Slowdown(1, *cpus, *agents, *rows)
	fmt.Print(t2.Format())
	fmt.Println("(paper, 133MHz PowerPC: raw 52s; simple 16149s = 310x; complex 34841s = 670x)")
	fmt.Println()

	fmt.Printf("Table 3: slowdown on %d-way SMP host\n", *host)
	t3 := compass.Slowdown(*host, *cpus, *agents, *rows)
	fmt.Print(t3.Format())
	fmt.Println("(paper: COMPASS runs >2x faster on the SMP host for the complex backend)")
	fmt.Println()

	// Cross-table speedup, the paper's headline observation.
	for i := 1; i < 3; i++ {
		sp := float64(t2.Rows[i].Wall) / float64(t3.Rows[i].Wall)
		fmt.Printf("SMP-host speedup, %s: %.2fx\n", t2.Rows[i].Mode, sp)
	}
}
