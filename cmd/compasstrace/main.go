// Command compasstrace manages HTTP request trace files — the paper's
// intermediate trace mechanism (§4.2): generate a SPECWeb96-like trace and
// save it, inspect a saved trace, or replay one against the simulated web
// server.
package main

import (
	"flag"
	"fmt"
	"os"

	"compass/internal/apps/httpd"
	"compass/internal/frontend"
	"compass/internal/machine"
	"compass/internal/specweb"
	"compass/internal/trace"
)

func main() {
	var (
		mode     = flag.String("mode", "generate", "generate | show | replay")
		file     = flag.String("file", "specweb.trace", "trace file path")
		requests = flag.Int("requests", 200, "trace length (generate)")
		dirs     = flag.Int("dirs", 2, "fileset directories")
		workers  = flag.Int("workers", 4, "server processes (replay)")
	)
	flag.Parse()

	swCfg := specweb.DefaultConfig()
	swCfg.Requests = *requests
	swCfg.Dirs = *dirs

	switch *mode {
	case "generate":
		tr := specweb.GenerateTrace(swCfg)
		f, err := os.Create(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d requests to %s\n", len(tr), *file)

	case "show":
		tr := load(*file)
		var bytes int64
		for _, r := range tr {
			bytes += int64(r.Size)
		}
		fmt.Printf("%s: %d requests, %d body bytes, first: %s %d\n",
			*file, len(tr), bytes, tr[0].Path, tr[0].Size)

	case "replay":
		tr := load(*file)
		cfg := machine.Default()
		m := machine.New(cfg)
		specweb.GenerateFileset(m.FS, swCfg)
		hcfg := httpd.DefaultConfig()
		hcfg.Workers = *workers
		m.FS.SetupCreate(hcfg.LogFile, nil)
		st := make([]httpd.Stats, *workers)
		for i := 0; i < *workers; i++ {
			i := i
			m.SpawnConnected(fmt.Sprintf("httpd%d", i), func(p *frontend.Proc) {
				httpd.Worker(p, hcfg, &st[i])
			})
		}
		player := trace.NewPlayer(m.Sim, m.NIC, tr, trace.PlayerConfig{
			Concurrency: *workers * 2,
			ThinkCycles: 20_000,
			Workers:     *workers,
			Port:        hcfg.Port,
		})
		player.Start()
		end := m.Sim.Run()
		fmt.Printf("replayed %d requests in %d simulated cycles (%.0f cycles mean latency, %d bad)\n",
			player.Completed, end, player.Latency.Mean(), player.BadBytes)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func load(path string) trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		fatal(err)
	}
	if len(tr) == 0 {
		fatal(fmt.Errorf("%s: empty trace", path))
	}
	return tr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compasstrace:", err)
	os.Exit(1)
}
