// Command compassvet is the project's determinism, shard-safety and
// allocation-discipline checker: a multichecker over the
// internal/analysis suite (detwallclock, detmaprange, snapfields,
// evtclosure, lanescope, allochot, lookaheadfloor).
//
// Usage:
//
//	compassvet [-run a,b] [-json] [-baseline file] [-write-baseline] [-fail-stale] [packages]
//
// With no packages, ./... is checked. Exit status is 0 when clean,
// 1 when non-baselined findings exist, 2 on a driver error.
//
// The baseline file (default compassvet.baseline.json when present)
// holds findings a past review accepted; matching findings are
// suppressed but counted, and entries that no longer match anything
// are reported as stale so the file shrinks over time. With
// -fail-stale, stale entries this run actually re-checked (their
// analyzer ran and their package was analyzed) are an error too, so CI
// keeps the baseline tight instead of letting it fossilize. Identity
// is (analyzer, file, message) — line numbers move with unrelated
// edits and are deliberately excluded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"strings"

	"compass/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut       = flag.Bool("json", false, "emit findings as a JSON array instead of text")
		baselinePath  = flag.String("baseline", "compassvet.baseline.json", "baseline file of accepted findings")
		writeBaseline = flag.Bool("write-baseline", false, "write the current findings to the baseline file and exit")
		runList       = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		failStale     = flag.Bool("fail-stale", false, "exit nonzero when the baseline holds entries this run re-checked and no longer produces")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: compassvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "compassvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "compassvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compassvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compassvet: %v\n", err)
		return 2
	}
	// Stable, repo-relative paths keep baselines portable across
	// checkouts and make findings clickable from the module root.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if *writeBaseline {
		if err := analysis.WriteBaseline(*baselinePath, diags); err != nil {
			fmt.Fprintf(os.Stderr, "compassvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "compassvet: wrote %d finding(s) to %s\n", len(diags), *baselinePath)
		return 0
	}

	baseline, err := analysis.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compassvet: %v\n", err)
		return 2
	}
	fresh, suppressed, stale := baseline.Filter(diags)

	if *jsonOut {
		type finding struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(fresh))
		for _, d := range fresh {
			out = append(out, finding{d.Analyzer, d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "compassvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Println(d.String())
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "compassvet: %d baselined finding(s) suppressed\n", suppressed)
	}
	// A baseline entry is only provably stale when this run actually
	// re-checked it: its analyzer ran and its file's package was in the
	// analyzed set. Partial runs (-run filter, a package subset) stay
	// quiet about the rest.
	ranAnalyzer := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ranAnalyzer[a.Name] = true
	}
	analyzedDirs := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		dir := p.Dir
		if rel, err := filepath.Rel(cwd, dir); err == nil && !strings.HasPrefix(rel, "..") {
			dir = rel
		}
		analyzedDirs[filepath.ToSlash(dir)] = true
	}
	staleCount := 0
	for _, e := range stale {
		if !ranAnalyzer[e.Analyzer] || !analyzedDirs[path.Dir(filepath.ToSlash(e.File))] {
			continue
		}
		staleCount++
		fmt.Fprintf(os.Stderr, "compassvet: stale baseline entry (no longer matches): %s %s: %s\n", e.Analyzer, e.File, e.Message)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "compassvet: %d finding(s)\n", len(fresh))
		return 1
	}
	if *failStale && staleCount > 0 {
		fmt.Fprintf(os.Stderr, "compassvet: %d stale baseline entr%s; prune %s or rerun with -write-baseline\n",
			staleCount, plural(staleCount, "y", "ies"), *baselinePath)
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
