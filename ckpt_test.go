package compass

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"compass/internal/checkpoint"
	"compass/internal/machine"
)

// sameResult compares every deterministic Result field (Wall is host time
// and legitimately differs).
func sameResult(t *testing.T, ref, got Result) {
	t.Helper()
	if got.Cycles != ref.Cycles {
		t.Errorf("cycles: resumed %d, uninterrupted %d", got.Cycles, ref.Cycles)
	}
	if got.Profile != ref.Profile {
		t.Errorf("profile:\nresumed       %+v\nuninterrupted %+v", got.Profile, ref.Profile)
	}
	if g, r := got.Counters.String(), ref.Counters.String(); g != r {
		t.Errorf("counters diverge:\nresumed:\n%s\nuninterrupted:\n%s", g, r)
	}
	if !reflect.DeepEqual(got.Extra, ref.Extra) {
		t.Errorf("extra: resumed %v, uninterrupted %v", got.Extra, ref.Extra)
	}
	if got.Syscalls != ref.Syscalls {
		t.Errorf("syscalls diverge:\nresumed:\n%s\nuninterrupted:\n%s", got.Syscalls, ref.Syscalls)
	}
}

func tpccPhases() (TPCCConfig, TPCCConfig) {
	warm := DefaultTPCC()
	warm.Agents = 2
	warm.TxPerAgent = 4
	measured := warm
	measured.TxPerAgent = 6
	measured.Seed = warm.Seed + 1
	return warm, measured
}

// Resuming a TPCC warm snapshot and running the measured phase must
// produce bit-identical stats to the uninterrupted two-phase run.
func TestCheckpointResumeDeterministicTPCC(t *testing.T) {
	warm, measured := tpccPhases()
	cfg := DefaultConfig()
	cfg.CPUs = 2
	path := filepath.Join(t.TempDir(), "tpcc.ckpt")

	ref, err := RunTPCCWithOptions(cfg, warm, measured, RunOptions{WarmupCheckpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTPCCWithOptions(cfg, warm, measured, RunOptions{ResumeFrom: path})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, ref, got)
	if ref.Extra["transactions"] != float64(measured.Agents*measured.TxPerAgent) {
		t.Errorf("transactions = %f", ref.Extra["transactions"])
	}
}

// Same property for the web workload: warmed buffer cache, bound listener
// and populated log survive the snapshot.
func TestCheckpointResumeDeterministicSPECWeb(t *testing.T) {
	warm := DefaultSPECWeb()
	warm.Requests = 20
	measured := warm
	measured.Requests = 30
	measured.Seed = warm.Seed + 1
	cfg := DefaultConfig()
	cfg.CPUs = 2
	path := filepath.Join(t.TempDir(), "web.ckpt")

	ref, err := RunSPECWebWithOptions(cfg, warm, measured, 2, 4, RunOptions{WarmupCheckpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSPECWebWithOptions(cfg, warm, measured, 2, 4, RunOptions{ResumeFrom: path})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, ref, got)
	if ref.Extra["requests"] != float64(measured.Requests) {
		t.Errorf("requests = %f", ref.Extra["requests"])
	}
}

// The snapshot header must be inspectable without decoding the body and
// must carry the machine's config hash.
func TestCheckpointReadInfo(t *testing.T) {
	warm, measured := tpccPhases()
	cfg := DefaultConfig()
	cfg.CPUs = 2
	path := filepath.Join(t.TempDir(), "tpcc.ckpt")
	if _, err := RunTPCCWithOptions(cfg, warm, measured, RunOptions{WarmupCheckpoint: path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inf, err := checkpoint.ReadInfo(f)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Version != checkpoint.Version {
		t.Errorf("version = %d", inf.Version)
	}
	if inf.Cycle == 0 {
		t.Error("zero snapshot cycle")
	}
	if inf.ConfigHash != checkpoint.ConfigHash(cfg) {
		t.Error("config hash mismatch")
	}
	if inf.UserCycles == 0 || inf.KernelCycles == 0 {
		t.Errorf("empty stats summary: %+v", inf)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	garbage := make([]byte, 256)
	copy(garbage, "not a checkpoint file at all...")
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := checkpoint.ReadInfo(f); !errors.Is(err, checkpoint.ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

// Configurations with live daemon state that cannot quiesce are refused,
// not silently mis-snapshotted.
func TestCheckpointGatesNonQuiescentConfigs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Preemptive = true
	m := machine.New(cfg)
	m.Sim.Run()
	if _, err := m.Checkpoint(); !errors.Is(err, machine.ErrNotCheckpointable) {
		t.Errorf("preemptive: err = %v, want ErrNotCheckpointable", err)
	}

	cfg = DefaultConfig()
	cfg.SyncdInterval = 100_000
	m = machine.New(cfg)
	if _, err := m.Checkpoint(); !errors.Is(err, machine.ErrNotCheckpointable) {
		t.Errorf("syncd: err = %v, want ErrNotCheckpointable", err)
	}
}

// A warm-started sweep simulates the warm phase once, so its total
// simulated cycles must come in below N cold runs of the same points.
func TestWarmBatchSweepSkipsWarmup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUs = 2
	batches := []int{1, 8, 64}
	const warmStores, stores = 400, 300

	points, warmEnd, err := RunBatchSweepWarm(cfg, batches, warmStores, stores)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(batches) || warmEnd == 0 {
		t.Fatalf("points=%d warmEnd=%d", len(points), warmEnd)
	}
	warmTotal := warmEnd
	var coldTotal uint64
	for _, p := range points {
		if p.End <= warmEnd {
			t.Errorf("batch %d: end %d not past warm end %d", p.Batch, p.End, warmEnd)
		}
		if p.Measured != p.End-warmEnd {
			t.Errorf("batch %d: measured %d != end-warm %d", p.Batch, p.Measured, p.End-warmEnd)
		}
		warmTotal += p.Measured
		coldTotal += p.End // a cold run re-simulates the warm phase every point
	}
	if warmTotal >= coldTotal {
		t.Errorf("warm sweep simulated %d cycles, cold baseline %d", warmTotal, coldTotal)
	}
}
