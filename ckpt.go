package compass

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"compass/internal/apps/db"
	"compass/internal/apps/httpd"
	"compass/internal/apps/tpcc"
	"compass/internal/checkpoint"
	"compass/internal/frontend"
	"compass/internal/machine"
	"compass/internal/specweb"
	"compass/internal/trace"
)

// RunOptions controls warm-start checkpointing for the phased Run*
// variants. A phased run executes a warm phase (cache/pool/page-table
// warmup) to quiescence, then a measured phase on the same machine.
//
// With WarmupCheckpoint set, the machine state is snapshotted between the
// phases; with ResumeFrom set, the warm phase is skipped entirely and the
// measured phase runs on the restored machine. Restore is bit-deterministic:
// the resumed measured phase produces exactly the stats of the
// uninterrupted run.
type RunOptions struct {
	// WarmupCheckpoint, when non-empty, writes a snapshot file after the
	// warm phase completes.
	WarmupCheckpoint string
	// ResumeFrom, when non-empty, restores the warm phase from a snapshot
	// file instead of simulating it. Mutually exclusive with
	// WarmupCheckpoint.
	ResumeFrom string
}

func (o RunOptions) validate() error {
	if o.WarmupCheckpoint != "" && o.ResumeFrom != "" {
		return fmt.Errorf("compass: WarmupCheckpoint and ResumeFrom are mutually exclusive")
	}
	return nil
}

// tpccSection names the TPCC host-side state section in a checkpoint.
const tpccSection = "tpcc"

// specwebSection names the SPECWeb host-side state section.
const specwebSection = "specweb"

// specwebMeta is the SPECWeb checkpoint section: the next worker index, so
// resumed spawns continue the uninterrupted run's process-naming sequence.
type specwebMeta struct {
	WorkerBase int
}

func saveCheckpointFile(path string, m *machine.Machine, sections []checkpoint.Section) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := checkpoint.SaveSections(f, m, sections); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// restoreCheckpointFile rebuilds a machine from a checkpoint file,
// resuming at the caller's shard count (snapshots themselves are
// shard-count-invariant).
func restoreCheckpointFile(path string, shards int) (*machine.Machine, map[string][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return checkpoint.RestoreFullShards(f, shards)
}

func spawnTPCCAgents(m *machine.Machine, wl *tpcc.Workload, base, n int) {
	for i := 0; i < n; i++ {
		idx := base + i
		m.SpawnConnected(fmt.Sprintf("agent%d", idx), func(p *frontend.Proc) {
			wl.Agent(p, idx)
		})
	}
}

// RunTPCCWithOptions runs the OLTP workload in two phases: a warm phase at
// the `warm` scale, then a measured phase at the `measured` scale on the
// same (warmed) machine. The measured config may change Agents, TxPerAgent,
// Seed and the transaction mix, but not the schema scale. See RunOptions
// for checkpointing between the phases.
func RunTPCCWithOptions(cfg Config, warm, measured TPCCConfig, opts RunOptions) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	var (
		m    *machine.Machine
		wl   *tpcc.Workload
		base int
	)
	start := time.Now()
	if opts.ResumeFrom != "" {
		var sections map[string][]byte
		var err error
		m, sections, err = restoreCheckpointFile(opts.ResumeFrom, cfg.Shards)
		if err != nil {
			return Result{}, err
		}
		state, ok := sections[tpccSection]
		if !ok {
			return Result{}, fmt.Errorf("compass: checkpoint has no %q section", tpccSection)
		}
		warmWL, b, err := tpcc.AttachRestore(state)
		if err != nil {
			return Result{}, err
		}
		base = b
		if wl, err = warmWL.WithConfig(measured); err != nil {
			return Result{}, err
		}
	} else {
		m = machine.New(cfg)
		warmWL := tpcc.Setup(m.FS, warm)
		spawnTPCCAgents(m, warmWL, 0, warm.Agents)
		m.Sim.Run()
		base = warm.Agents
		if opts.WarmupCheckpoint != "" {
			state, err := warmWL.SaveState(base)
			if err != nil {
				return Result{}, err
			}
			if err := saveCheckpointFile(opts.WarmupCheckpoint, m,
				[]checkpoint.Section{{Name: tpccSection, Data: state}}); err != nil {
				return Result{}, err
			}
		}
		var err error
		if wl, err = warmWL.WithConfig(measured); err != nil {
			return Result{}, err
		}
	}

	spawnTPCCAgents(m, wl, base, measured.Agents)
	end := m.Sim.Run()
	res := finish("TPCC/db", m, uint64(end), time.Since(start))
	res.Extra["transactions"] = float64(measured.Agents * measured.TxPerAgent)
	hits, misses := db.Stats(wl.Cat)
	res.Extra["pool.hits"] = float64(hits)
	res.Extra["pool.misses"] = float64(misses)
	return res, nil
}

func spawnHTTPDWorkers(m *machine.Machine, hcfg httpd.Config, st []httpd.Stats, base int) {
	for i := range st {
		i := i
		m.SpawnConnected(fmt.Sprintf("httpd%d", base+i), func(p *frontend.Proc) {
			httpd.Worker(p, hcfg, &st[i])
		})
	}
}

// RunSPECWebWithOptions runs the web workload in two phases: the `warm`
// trace against a freshly generated fileset, then the `measured` trace on
// the same machine — warmed buffer cache, bound listener, populated log.
// Worker processes exit between phases (goroutine state cannot be
// checkpointed) and fresh workers re-attach to the listener. See RunOptions
// for checkpointing between the phases.
func RunSPECWebWithOptions(cfg Config, warm, measured SPECWebConfig, workers, concurrency int, opts RunOptions) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	hcfg := httpd.DefaultConfig()
	hcfg.Workers = workers
	var (
		m    *machine.Machine
		base int
	)
	start := time.Now()
	if opts.ResumeFrom != "" {
		var sections map[string][]byte
		var err error
		m, sections, err = restoreCheckpointFile(opts.ResumeFrom, cfg.Shards)
		if err != nil {
			return Result{}, err
		}
		state, ok := sections[specwebSection]
		if !ok {
			return Result{}, fmt.Errorf("compass: checkpoint has no %q section", specwebSection)
		}
		var meta specwebMeta
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&meta); err != nil {
			return Result{}, err
		}
		base = meta.WorkerBase
	} else {
		m = machine.New(cfg)
		specweb.GenerateFileset(m.FS, warm)
		m.FS.SetupCreate(hcfg.LogFile, nil)
		warmSt := make([]httpd.Stats, workers)
		spawnHTTPDWorkers(m, hcfg, warmSt, 0)
		warmPlayer := trace.NewPlayer(m.Sim, m.NIC, specweb.GenerateTrace(warm), trace.PlayerConfig{
			Concurrency: concurrency,
			ThinkCycles: 20_000,
			Workers:     workers,
			Port:        hcfg.Port,
		})
		enableClientARQ(warmPlayer, m.Cfg)
		warmPlayer.Start()
		m.Sim.Run()
		base = workers
		if opts.WarmupCheckpoint != "" {
			var meta bytes.Buffer
			if err := gob.NewEncoder(&meta).Encode(specwebMeta{WorkerBase: base}); err != nil {
				return Result{}, err
			}
			if err := saveCheckpointFile(opts.WarmupCheckpoint, m,
				[]checkpoint.Section{{Name: specwebSection, Data: meta.Bytes()}}); err != nil {
				return Result{}, err
			}
		}
	}

	st := make([]httpd.Stats, workers)
	spawnHTTPDWorkers(m, hcfg, st, base)
	player := trace.NewPlayer(m.Sim, m.NIC, specweb.GenerateTrace(measured), trace.PlayerConfig{
		Concurrency: concurrency,
		ThinkCycles: 20_000,
		Workers:     workers,
		Port:        hcfg.Port,
	})
	enableClientARQ(player, m.Cfg)
	player.Start()
	end := m.Sim.Run()
	res := finish("SPECWeb/httpd", m, uint64(end), time.Since(start))
	res.Extra["requests"] = float64(player.Completed)
	res.Extra["latency.mean"] = player.Latency.Mean()
	if player.ARQ() != nil {
		res.Extra["client.failures"] = float64(player.ClientFailures)
	}
	var served, sent uint64
	for _, s := range st {
		served += s.Served
		sent += s.BytesSent
	}
	res.Extra["served"] = float64(served)
	res.Extra["bytes"] = float64(sent)
	return res, nil
}
