package compass

import (
	"errors"
	"fmt"
	"strings"

	"compass/internal/expt"
	"compass/internal/frontend"
	"compass/internal/guard"
	"compass/internal/isa"
	"compass/internal/machine"
	"compass/internal/mem"
	"compass/internal/osserver"
	"compass/internal/stats"
)

// RunBatchSweep is the interleave-granularity experiment (§2): procs
// perform a fixed strided store sweep with `batch` references coalesced
// per event-port message. batch=1 is per-reference interleaving; larger
// batches approximate the paper's basic-block granularity, trading
// interleave fidelity for fewer frontend-backend rendezvous. Returns the
// simulated completion time (identical memory traffic regardless of
// batch, so the simulated cycles should barely move while host time
// drops).
func RunBatchSweep(cfg Config, batch, stores int) uint64 {
	m := machine.New(cfg)
	spawnSweepProcs(m, cfg.CPUs, 0, batch, stores)
	end := m.Sim.Run()
	return uint64(end)
}

// spawnSweepProcs spawns n strided-store processes named sweep<base+i>.
func spawnSweepProcs(m *machine.Machine, n, base, batch, stores int) {
	for i := 0; i < n; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("sweep%d", base+i), func(p *frontend.Proc) {
			os := osserver.For(p)
			sbase := os.Sbrk(1 << 20)
			p.SetBatch(batch)
			for j := 0; j < stores; j++ {
				p.Store(sbase+mem.VirtAddr((j*96+i*32)%(1<<20-8)), 4)
				p.Compute(isa.ALU(3))
			}
			p.SetBatch(1)
		})
	}
}

// BatchSweepPoint is one measurement of a warm-started batch sweep.
type BatchSweepPoint struct {
	// Batch is the references-per-event setting of this point.
	Batch int
	// End is the final simulated cycle of the resumed run.
	End uint64
	// Measured is the cycles this point actually simulated (End minus the
	// shared warm phase's end cycle).
	Measured uint64
	// Counters is the point's full backend counter set (cache hits,
	// traffic, ...) — part of the bit-equality surface the determinism
	// regression test compares between serial and parallel runs.
	Counters *stats.Counters
}

// SimCycles reports the point's measured cycles to the experiment
// engine's progress line (expt.Cycled).
func (p BatchSweepPoint) SimCycles() uint64 { return p.Measured }

// Progress is the experiment engine's progress-line update; see
// expt.Progress for fields.
type Progress = expt.Progress

// ExptOptions configures the parallel experiment engine behind the
// fan-out helpers (RunBatchSweepWarmParallel, RunSeedCampaign).
type ExptOptions struct {
	// Workers sizes the host worker pool; <=0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives serialized progress updates.
	Progress func(Progress)
}

// RunBatchSweepWarm runs the batch sweep with every point resumed from one
// in-memory warm snapshot: the warm phase (warmStores strided stores per
// CPU) is simulated once, checkpointed, and each batch setting restores the
// snapshot and simulates only its measured phase. Against len(batches) cold
// starts, the total simulated cycles drop by (len(batches)-1) warm phases.
// Returns the per-point measurements and the warm phase's end cycle.
//
// This is the serial path: one worker, points in order. It is the
// reference the determinism test holds RunBatchSweepWarmParallel to.
func RunBatchSweepWarm(cfg Config, batches []int, warmStores, stores int) ([]BatchSweepPoint, uint64, error) {
	return RunBatchSweepWarmParallel(cfg, batches, warmStores, stores, ExptOptions{Workers: 1})
}

// RunBatchSweepWarmParallel fans the measured phases out across host
// cores: the warm phase is simulated once, its snapshot bytes are shared
// read-only, and each worker restores a private machine per point.
// Points come back ordered by batches index — never completion order —
// and are bit-identical to the Workers=1 run.
func RunBatchSweepWarmParallel(cfg Config, batches []int, warmStores, stores int, opts ExptOptions) ([]BatchSweepPoint, uint64, error) {
	m := machine.New(cfg)
	spawnSweepProcs(m, cfg.CPUs, 0, 1, warmStores)
	warmEnd := uint64(m.Sim.Run())
	snap, err := expt.TakeSnapshot(m, nil)
	if err != nil {
		return nil, 0, err
	}

	jobs := make([]expt.Job[BatchSweepPoint], len(batches))
	for i, b := range batches {
		b := b
		jobs[i] = expt.Job[BatchSweepPoint]{
			Name: fmt.Sprintf("batch%d", b),
			// Every point simulates the same store count; weight them
			// equally by the expected measured cycles (~ stores).
			EstCycles: uint64(stores),
			Run: func() (BatchSweepPoint, error) {
				rm, err := snap.Restore()
				if err != nil {
					return BatchSweepPoint{}, err
				}
				spawnSweepProcs(rm, cfg.CPUs, cfg.CPUs, b, stores)
				end := uint64(rm.Sim.Run())
				c := rm.Sim.Counters()
				rm.FaultCounters(c)
				return BatchSweepPoint{
					Batch:    b,
					End:      end,
					Measured: end - warmEnd,
					Counters: c,
				}, nil
			},
		}
	}
	rs := expt.Run(expt.Config{Workers: opts.Workers, Progress: opts.Progress}, jobs)
	if err := expt.FirstErr(rs); err != nil {
		return nil, 0, err
	}
	return expt.Values(rs), warmEnd, nil
}

// SweepFailure is one batch point that produced no measurement in a
// guarded sweep.
type SweepFailure struct {
	// Batch is the failed point's references-per-event setting.
	Batch int
	// Kind classifies the failure.
	Kind guard.Kind
	// Reason is the failure's cause.
	Reason string
	// Bundle is the crash-repro bundle directory, if one was written.
	Bundle string
}

// RunBatchSweepWarmGuarded is RunBatchSweepWarmParallel under supervision:
// the warm phase and every measured point run in their own guard session,
// so one point's panic or stall costs that point, not the sweep. Returns
// the surviving points (ordered by batches index), the failed points'
// table rows, and the warm end cycle. Points that never trip are
// bit-identical to the unguarded sweep's.
func RunBatchSweepWarmGuarded(cfg Config, batches []int, warmStores, stores int, gcfg guard.Config, opts ExptOptions) ([]BatchSweepPoint, []SweepFailure, uint64, error) {
	m := machine.New(cfg)
	wsess := guard.NewSession(bundleSub(gcfg, "warm"))
	var (
		warmEnd uint64
		snap    *expt.Snapshot
	)
	if err := wsess.Run("warm", func() error {
		wsess.Attach(m.Sim)
		spawnSweepProcs(m, cfg.CPUs, 0, 1, warmStores)
		warmEnd = uint64(m.Sim.Run())
		var err error
		snap, err = expt.TakeSnapshot(m, nil)
		return err
	}); err != nil {
		// Every point resumes from the warm snapshot: no snapshot, no sweep.
		return nil, nil, 0, err
	}

	jobs := make([]expt.Job[BatchSweepPoint], len(batches))
	for i, b := range batches {
		b := b
		label := fmt.Sprintf("batch%d", b)
		pgcfg := bundleSub(gcfg, label)
		jobs[i] = expt.Job[BatchSweepPoint]{
			Name:      label,
			EstCycles: uint64(stores),
			Run: func() (BatchSweepPoint, error) {
				sess := guard.NewSession(pgcfg)
				var pt BatchSweepPoint
				err := sess.Run(label, func() error {
					rm, err := snap.Restore()
					if err != nil {
						return err
					}
					// Snapshot restore bypasses machine.New, so the session
					// attaches to the restored engine explicitly.
					sess.Attach(rm.Sim)
					spawnSweepProcs(rm, cfg.CPUs, cfg.CPUs, b, stores)
					end := uint64(rm.Sim.Run())
					c := rm.Sim.Counters()
					rm.FaultCounters(c)
					pt = BatchSweepPoint{Batch: b, End: end, Measured: end - warmEnd, Counters: c}
					return nil
				})
				return pt, err
			},
		}
	}
	rs := expt.Run(expt.Config{Workers: opts.Workers, Progress: opts.Progress}, jobs)

	var points []BatchSweepPoint
	var failed []SweepFailure
	for i, r := range rs {
		if r.Err != nil {
			f := SweepFailure{Batch: batches[i], Kind: guard.KindPanic, Reason: r.Err.Error()}
			var a *guard.Abort
			if errors.As(r.Err, &a) {
				f.Kind, f.Reason, f.Bundle = a.Kind, a.Reason, a.Bundle
			}
			failed = append(failed, f)
			continue
		}
		points = append(points, r.Value)
	}
	return points, failed, warmEnd, nil
}

// FormatSweepFailures renders a guarded sweep's failed-points table; empty
// when every point measured. Bundle paths are excluded (host-dependent).
func FormatSweepFailures(failed []SweepFailure) string {
	if len(failed) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %10s  %s\n", "batch", "kind", "reason")
	for _, f := range failed {
		fmt.Fprintf(&b, "%8d %10s  %s\n", f.Batch, f.Kind, f.Reason)
	}
	return b.String()
}

// FormatSweepTable renders sweep points as a deterministic table — the
// byte-equality surface for the serial-vs-parallel contract. The full
// per-point counter dump is included so a single flipped backend event
// anywhere breaks the comparison.
func FormatSweepTable(points []BatchSweepPoint, warmEnd uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "warm end %d\n", warmEnd)
	fmt.Fprintf(&b, "%8s %14s %14s\n", "batch", "end", "measured")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %14d %14d\n", p.Batch, p.End, p.Measured)
	}
	for _, p := range points {
		fmt.Fprintf(&b, "-- batch %d counters --\n", p.Batch)
		if p.Counters != nil {
			b.WriteString(p.Counters.String())
		}
	}
	return b.String()
}
