package compass

import (
	"fmt"

	"compass/internal/frontend"
	"compass/internal/isa"
	"compass/internal/machine"
	"compass/internal/mem"
	"compass/internal/osserver"
)

// RunBatchSweep is the interleave-granularity experiment (§2): procs
// perform a fixed strided store sweep with `batch` references coalesced
// per event-port message. batch=1 is per-reference interleaving; larger
// batches approximate the paper's basic-block granularity, trading
// interleave fidelity for fewer frontend-backend rendezvous. Returns the
// simulated completion time (identical memory traffic regardless of
// batch, so the simulated cycles should barely move while host time
// drops).
func RunBatchSweep(cfg Config, batch, stores int) uint64 {
	m := machine.New(cfg)
	for i := 0; i < cfg.CPUs; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("sweep%d", i), func(p *frontend.Proc) {
			os := osserver.For(p)
			base := os.Sbrk(1 << 20)
			p.SetBatch(batch)
			for j := 0; j < stores; j++ {
				p.Store(base+mem.VirtAddr((j*96+i*32)%(1<<20-8)), 4)
				p.Compute(isa.ALU(3))
			}
			p.SetBatch(1)
		})
	}
	end := m.Sim.Run()
	return uint64(end)
}
