package compass

import (
	"bytes"
	"fmt"

	"compass/internal/checkpoint"
	"compass/internal/frontend"
	"compass/internal/isa"
	"compass/internal/machine"
	"compass/internal/mem"
	"compass/internal/osserver"
)

// RunBatchSweep is the interleave-granularity experiment (§2): procs
// perform a fixed strided store sweep with `batch` references coalesced
// per event-port message. batch=1 is per-reference interleaving; larger
// batches approximate the paper's basic-block granularity, trading
// interleave fidelity for fewer frontend-backend rendezvous. Returns the
// simulated completion time (identical memory traffic regardless of
// batch, so the simulated cycles should barely move while host time
// drops).
func RunBatchSweep(cfg Config, batch, stores int) uint64 {
	m := machine.New(cfg)
	spawnSweepProcs(m, cfg.CPUs, 0, batch, stores)
	end := m.Sim.Run()
	return uint64(end)
}

// spawnSweepProcs spawns n strided-store processes named sweep<base+i>.
func spawnSweepProcs(m *machine.Machine, n, base, batch, stores int) {
	for i := 0; i < n; i++ {
		i := i
		m.SpawnConnected(fmt.Sprintf("sweep%d", base+i), func(p *frontend.Proc) {
			os := osserver.For(p)
			sbase := os.Sbrk(1 << 20)
			p.SetBatch(batch)
			for j := 0; j < stores; j++ {
				p.Store(sbase+mem.VirtAddr((j*96+i*32)%(1<<20-8)), 4)
				p.Compute(isa.ALU(3))
			}
			p.SetBatch(1)
		})
	}
}

// BatchSweepPoint is one measurement of a warm-started batch sweep.
type BatchSweepPoint struct {
	// Batch is the references-per-event setting of this point.
	Batch int
	// End is the final simulated cycle of the resumed run.
	End uint64
	// Measured is the cycles this point actually simulated (End minus the
	// shared warm phase's end cycle).
	Measured uint64
}

// RunBatchSweepWarm runs the batch sweep with every point resumed from one
// in-memory warm snapshot: the warm phase (warmStores strided stores per
// CPU) is simulated once, checkpointed, and each batch setting restores the
// snapshot and simulates only its measured phase. Against len(batches) cold
// starts, the total simulated cycles drop by (len(batches)-1) warm phases.
// Returns the per-point measurements and the warm phase's end cycle.
func RunBatchSweepWarm(cfg Config, batches []int, warmStores, stores int) ([]BatchSweepPoint, uint64, error) {
	m := machine.New(cfg)
	spawnSweepProcs(m, cfg.CPUs, 0, 1, warmStores)
	warmEnd := uint64(m.Sim.Run())
	var snap bytes.Buffer
	if err := checkpoint.Save(&snap, m); err != nil {
		return nil, 0, err
	}
	points := make([]BatchSweepPoint, 0, len(batches))
	for _, b := range batches {
		rm, err := checkpoint.Restore(bytes.NewReader(snap.Bytes()))
		if err != nil {
			return nil, 0, err
		}
		spawnSweepProcs(rm, cfg.CPUs, cfg.CPUs, b, stores)
		end := uint64(rm.Sim.Run())
		points = append(points, BatchSweepPoint{Batch: b, End: end, Measured: end - warmEnd})
	}
	return points, warmEnd, nil
}
